"""Supervised worker pool: deadlines, retries, and graceful degradation.

``SweepEngine`` used to fan cells over a bare ``multiprocessing.Pool``
with ``imap_unordered`` — fine until a worker hangs (the grid stalls
forever), is SIGKILLed (its cells are silently lost), or the pool breaks
(the whole sweep aborts).  :class:`WorkerSupervisor` replaces that with
the same retry/timeout/degradation discipline the device layer applies
to PCM writes (``docs/FAULTS.md``), lifted to the execution layer
(``docs/RESILIENCE.md``):

* **Per-task deadlines** — every dispatched task carries a wall-clock
  deadline (the engine scales it by trace size); a task that blows its
  deadline has its worker killed and is retried elsewhere.
* **Worker-death detection** — each worker owns a private ``Pipe``; a
  killed worker surfaces as EOF on its connection within one poll
  interval (no shared queue a dying worker can corrupt), and its task is
  retried with the worker's exit code recorded as ``last_signal``.
* **Bounded retry with deterministic backoff** — a failed attempt is
  requeued after an exponential backoff whose jitter derives from
  ``sha256(seed, task, attempt)``, so retry schedules are reproducible
  in tests and across runs.
* **Quarantine** — a task that fails ``max_retries + 1`` attempts stops
  retrying and is reported as a structured failure carrying
  ``attempts``/``last_signal``; the rest of the grid completes.
* **Graceful degradation** — dead or hung workers are replaced up to
  ``max_replacements`` times; past that the supervisor stops trusting
  process isolation and drains the remaining tasks serially in-process
  rather than aborting.

Every retry, timeout, death, and degradation emits a
:meth:`~repro.obs.Tracer.instant` on the active tracer (when one is
installed) and bumps a counter in :attr:`WorkerSupervisor.metrics`, so a
chaotic sweep leaves a timeline.  With zero faults the supervisor is a
plain work-stealing pool: tasks run exactly once, in dispatch order per
worker, and results are byte-identical to the unsupervised pool it
replaced (``benchmarks/bench_sweep_scaling.py`` pins the overhead).
"""

from __future__ import annotations

import hashlib
import math
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import wait as _wait_ready
from typing import Callable, Iterator

from repro.obs.metrics import MetricRegistry
from repro.obs.runtime import active_tracer

__all__ = [
    "RetryPolicy",
    "TaskFailure",
    "TaskReport",
    "WorkerSupervisor",
    "WorkerTaskError",
    "retry_jitter",
]


def retry_jitter(seed: int, task_id: int, attempt: int) -> float:
    """Deterministic jitter in ``[0, 1)`` for one (task, attempt) pair.

    Derived from a SHA-256 digest rather than a shared RNG so the value
    is a pure function of its arguments: independent of retry ordering,
    worker identity, and ``PYTHONHASHSEED``.
    """
    digest = hashlib.sha256(f"{seed}:{task_id}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for the supervision state machine (docs/RESILIENCE.md).

    ``deadline_base_s``/``deadline_per_request_s`` are the default
    deadline scaling the engine applies per cell (a cell pricing more
    requests gets more wall clock before it is declared hung).
    """

    max_retries: int = 2            # attempts beyond the first
    backoff_base_s: float = 0.05    # first retry delay
    backoff_cap_s: float = 2.0      # exponential growth ceiling
    jitter: float = 0.5             # +[0, jitter) fraction on top
    max_replacements: int = 3       # worker rebuilds before serial fallback
    poll_interval_s: float = 0.05   # supervisor wakeup granularity
    deadline_base_s: float = 30.0
    deadline_per_request_s: float = 0.02
    seed: int = 0                   # jitter derivation root

    def backoff_s(self, task_id: int, attempt: int) -> float:
        """Delay before attempt ``attempt + 1`` of ``task_id``."""
        base = min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** max(0, attempt - 1))
        )
        return base * (1.0 + self.jitter * retry_jitter(self.seed, task_id, attempt))

    def deadline_s(self, requests_per_core: int) -> float:
        """Default per-cell deadline scaled by trace size."""
        return self.deadline_base_s + self.deadline_per_request_s * requests_per_core


@dataclass(frozen=True)
class TaskFailure:
    """Structured terminal failure of one task (strings only: picklable)."""

    error_type: str
    message: str
    traceback_text: str = ""


@dataclass
class TaskReport:
    """One task's terminal outcome as the supervisor saw it."""

    task_id: int
    value: object = None                 # task_fn return value on success
    failure: TaskFailure | None = None   # set when no value was produced
    attempts: int = 1
    last_signal: str = ""                # "", "timeout", "exit:-9", "exception"
    serial: bool = False                 # ran via the serial fallback


class WorkerTaskError(RuntimeError):
    """Raised by fail-fast callers for a task that died without a value."""

    def __init__(self, failure: TaskFailure) -> None:
        self.failure = failure
        super().__init__(
            f"{failure.error_type}: {failure.message}\n{failure.traceback_text}"
        )


# ----------------------------------------------------------------------
# Worker process side.  Must stay top-level and import-light: workers
# are forked (or spawned) with this module importable.
# ----------------------------------------------------------------------
def _worker_main(conn, task_fn) -> None:
    """Worker loop: receive a payload, run ``task_fn``, send the result.

    A raising task is shipped back as a structured failure (plus the
    exception object itself when picklable, so fail-fast callers can
    re-raise the original).  ``None`` is the shutdown sentinel.
    """
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            return
        if payload is None:
            return
        try:
            value = task_fn(payload)
        except BaseException as exc:
            failure = TaskFailure(
                error_type=type(exc).__name__,
                message=str(exc),
                traceback_text=traceback.format_exc(),
            )
            try:
                conn.send(("err", failure, exc))
            except Exception:
                conn.send(("err", failure, None))
            continue
        try:
            conn.send(("ok", value))
        except Exception as exc:
            conn.send(
                (
                    "err",
                    TaskFailure(
                        error_type=type(exc).__name__,
                        message=f"task result not picklable: {exc}",
                    ),
                    None,
                )
            )


@dataclass
class _Attempt:
    """Supervisor-side bookkeeping for one task across its attempts."""

    task_id: int
    payload: object
    deadline_s: float | None
    attempts: int = 0
    last_signal: str = ""
    not_before: float = 0.0      # monotonic instant the next attempt may start


class _Worker:
    """One supervised worker process with a private duplex pipe."""

    def __init__(self, ctx, task_fn) -> None:
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child, task_fn), daemon=True
        )
        self.process.start()
        child.close()
        self.task: _Attempt | None = None
        self.deadline_at: float = math.inf
        self.dead = False

    def dispatch(self, attempt: _Attempt, now: float) -> bool:
        """Send one attempt; False (and ``dead``) if the pipe is broken."""
        try:
            self.conn.send(attempt.payload)
        except (OSError, ValueError):
            self.dead = True
            return False
        self.task = attempt
        self.deadline_at = (
            now + attempt.deadline_s if attempt.deadline_s else math.inf
        )
        return True

    def exit_signal(self) -> str:
        code = self.process.exitcode
        return f"exit:{code}" if code is not None else "exit:?"

    def destroy(self, *, graceful: bool) -> None:
        """Tear the worker down; ``graceful`` sends the stop sentinel first."""
        try:
            if graceful and self.process.is_alive():
                self.conn.send(None)
                self.process.join(timeout=0.5)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=1.0)
        except (OSError, ValueError):
            pass  # already gone / pipe closed: nothing left to tear down
        finally:
            self.conn.close()


# ----------------------------------------------------------------------
# The supervisor.
# ----------------------------------------------------------------------
class WorkerSupervisor:
    """Run picklable tasks over supervised worker processes.

    Parameters
    ----------
    task_fn:
        Top-level picklable callable executed as ``task_fn(payload)``
        inside a worker.
    workers:
        Worker process count (>= 1).  The supervisor still runs its
        state machine at ``workers=1``; callers wanting a zero-machinery
        inline loop should branch before constructing one.
    policy:
        The :class:`RetryPolicy` governing backoff, retry and
        degradation bounds.
    deadline_for:
        Optional ``payload -> seconds | None`` giving each task its
        wall-clock deadline; ``None`` (default) disables deadlines.
    retry_value_signal:
        Optional ``value -> str | None`` classifying a *returned* value
        as a retryable failure (the engine maps ``CellError`` rows to
        ``"exception"``); ``None`` treats every returned value as final.
    name:
        Label used for tracer events (``<name>.retry`` instants etc.).
    """

    def __init__(
        self,
        task_fn: Callable,
        *,
        workers: int,
        policy: RetryPolicy | None = None,
        deadline_for: Callable[[object], float | None] | None = None,
        retry_value_signal: Callable[[object], str | None] | None = None,
        name: str = "sweep",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.task_fn = task_fn
        self.workers = int(workers)
        self.policy = policy if policy is not None else RetryPolicy()
        self.deadline_for = deadline_for
        self.retry_value_signal = retry_value_signal
        self.name = name
        self.metrics = MetricRegistry()
        self._c = {
            key: self.metrics.counter(f"supervisor.{key}")
            for key in (
                "dispatched", "retries", "timeouts", "worker_deaths",
                "replacements", "quarantined", "serial_tasks",
            )
        }
        self.degraded = False

    # -- observability -------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Current supervisor counters as plain ints."""
        return {key: int(c.value) for key, c in self._c.items()}

    def _event(self, kind: str, **args) -> None:
        self._c[
            {
                "retry": "retries",
                "timeout": "timeouts",
                "worker-death": "worker_deaths",
                "replace": "replacements",
                "quarantine": "quarantined",
                "serial": "serial_tasks",
                "dispatch": "dispatched",
            }[kind]
        ].inc()
        tracer = active_tracer()
        if tracer is not None and kind != "dispatch":
            tracer.instant(
                f"{self.name}.{kind}",
                pid=f"{self.name}.supervisor",
                tid="supervisor",
                cat="supervisor",
                args=args,
            )

    # -- scheduling helpers --------------------------------------------
    def _schedule_retry(
        self, attempt: _Attempt, signal: str, ready: deque, delayed: list,
        now: float,
    ) -> bool:
        """Requeue ``attempt`` if budget remains; True when requeued."""
        attempt.last_signal = signal
        if attempt.attempts > self.policy.max_retries:
            self._event(
                "quarantine", task=attempt.task_id,
                attempts=attempt.attempts, signal=signal,
            )
            return False
        attempt.not_before = now + self.policy.backoff_s(
            attempt.task_id, attempt.attempts
        )
        delayed.append(attempt)
        self._event(
            "retry", task=attempt.task_id, attempts=attempt.attempts,
            signal=signal,
        )
        return True

    def _finish_value(
        self, attempt: _Attempt, value, ready: deque, delayed: list,
        now: float, *, serial: bool,
    ) -> TaskReport | None:
        """Terminal-or-retry decision for a task that returned a value."""
        signal = (
            self.retry_value_signal(value)
            if self.retry_value_signal is not None
            else None
        )
        if signal and self._schedule_retry(attempt, signal, ready, delayed, now):
            return None
        return TaskReport(
            task_id=attempt.task_id,
            value=value,
            attempts=attempt.attempts,
            last_signal=signal or attempt.last_signal,
            serial=serial,
        )

    @staticmethod
    def _promote_ready(ready: deque, delayed: list, now: float) -> None:
        still_waiting = [a for a in delayed if a.not_before > now]
        for a in delayed:
            if a.not_before <= now:
                ready.append(a)
        delayed[:] = still_waiting

    def _next_wakeup_s(self, delayed: list, busy: list, now: float) -> float:
        horizon = self.policy.poll_interval_s
        for a in delayed:
            horizon = min(horizon, max(0.0, a.not_before - now))
        for w in busy:
            horizon = min(horizon, max(0.0, w.deadline_at - now))
        return max(horizon, 0.001)

    # -- the run loop ---------------------------------------------------
    def run(self, payloads) -> Iterator[TaskReport]:
        """Yield a :class:`TaskReport` per ``(task_id, payload)`` pair.

        Reports are yielded in completion order; callers reassemble by
        ``task_id``.  The generator owns the worker processes: exhausting
        or closing it tears them down.
        """
        ready: deque[_Attempt] = deque(
            _Attempt(
                task_id=task_id,
                payload=payload,
                deadline_s=(
                    self.deadline_for(payload)
                    if self.deadline_for is not None
                    else None
                ),
            )
            for task_id, payload in payloads
        )
        delayed: list[_Attempt] = []
        if not ready:
            return
        ctx = get_context()
        pool: list[_Worker] = [
            _Worker(ctx, self.task_fn)
            for _ in range(min(self.workers, len(ready)))
        ]
        replacements = 0
        try:
            while ready or delayed or any(w.task is not None for w in pool):
                now = time.monotonic()
                self._promote_ready(ready, delayed, now)

                if self.degraded:
                    yield from self._drain_serial(ready, delayed)
                    return

                # Dispatch to idle workers.  A worker found dead at
                # dispatch time (killed while idle) is replaced and the
                # attempt is requeued uncharged.
                for w in list(pool):
                    if w.task is None and not w.dead and ready:
                        attempt = ready.popleft()
                        attempt.attempts += 1
                        if w.dispatch(attempt, now):
                            self._event("dispatch")
                        else:
                            attempt.attempts -= 1
                            ready.appendleft(attempt)
                    if w.dead:
                        replacements += self._replace(w, pool, ctx)

                busy = [w for w in pool if w.task is not None]
                if not busy:
                    # Everything outstanding is backing off.
                    time.sleep(self._next_wakeup_s(delayed, busy, now))
                    continue

                for conn in _wait_ready(
                    [w.conn for w in busy],
                    timeout=self._next_wakeup_s(delayed, busy, now),
                ):
                    w = next(w for w in busy if w.conn is conn)
                    report = self._collect(w, ready, delayed)
                    if report is not None:
                        yield report
                    if w.dead:
                        replacements += self._replace(w, pool, ctx)

                now = time.monotonic()
                for w in busy:
                    if w.task is not None and now >= w.deadline_at:
                        report = self._reap_hung(w, ready, delayed, now)
                        if report is not None:
                            yield report
                        replacements += self._replace(w, pool, ctx)

                if replacements > self.policy.max_replacements:
                    self._degrade(pool, ready, delayed)
        finally:
            for w in pool:
                w.destroy(graceful=True)

    # -- event handlers --------------------------------------------------
    def _collect(self, w: _Worker, ready, delayed) -> TaskReport | None:
        """Handle one readable worker connection (result or death)."""
        attempt = w.task
        now = time.monotonic()
        try:
            msg = w.conn.recv()
        except (EOFError, OSError):
            # The worker died mid-task: retry its attempt elsewhere.
            w.task = None
            w.dead = True
            if attempt is None:
                return None
            signal = w.exit_signal()
            self._event(
                "worker-death", task=attempt.task_id, signal=signal,
                attempts=attempt.attempts,
            )
            if self._schedule_retry(attempt, signal, ready, delayed, now):
                return None
            return TaskReport(
                task_id=attempt.task_id,
                failure=TaskFailure(
                    error_type="WorkerCrash",
                    message=(
                        f"worker died ({signal}) on every attempt; "
                        f"task quarantined after {attempt.attempts} attempts"
                    ),
                ),
                attempts=attempt.attempts,
                last_signal=attempt.last_signal,
            )
        w.task = None
        w.deadline_at = math.inf
        if attempt is None:  # late message from an already-reaped task
            return None
        if msg[0] == "ok":
            return self._finish_value(
                attempt, msg[1], ready, delayed, now, serial=False
            )
        _, failure, exc = msg
        if self._schedule_retry(attempt, "exception", ready, delayed, now):
            return None
        return TaskReport(
            task_id=attempt.task_id,
            failure=failure,
            value=exc,
            attempts=attempt.attempts,
            last_signal="exception",
        )

    def _reap_hung(self, w: _Worker, ready, delayed, now) -> TaskReport | None:
        """Kill a worker whose task blew its deadline; retry the task."""
        attempt = w.task
        w.task = None
        self._event(
            "timeout", task=attempt.task_id, deadline_s=attempt.deadline_s,
            attempts=attempt.attempts,
        )
        w.destroy(graceful=False)
        if self._schedule_retry(attempt, "timeout", ready, delayed, now):
            return None
        return TaskReport(
            task_id=attempt.task_id,
            failure=TaskFailure(
                error_type="CellTimeout",
                message=(
                    f"task exceeded its {attempt.deadline_s:g}s deadline on "
                    f"all {attempt.attempts} attempts"
                ),
            ),
            attempts=attempt.attempts,
            last_signal="timeout",
        )

    def _replace(self, dead: _Worker, pool: list, ctx) -> int:
        """Swap a dead/killed worker for a fresh one; returns 1."""
        dead.destroy(graceful=False)
        idx = pool.index(dead)
        pool[idx] = _Worker(ctx, self.task_fn)
        self._event("replace")
        return 1

    def _degrade(self, pool: list, ready, delayed) -> None:
        """Stop trusting process isolation: drop to serial execution."""
        self.degraded = True
        tracer = active_tracer()
        if tracer is not None:
            tracer.instant(
                f"{self.name}.degrade-serial",
                pid=f"{self.name}.supervisor",
                tid="supervisor",
                cat="supervisor",
                args={"remaining": len(ready) + len(delayed)},
            )
        for w in pool:
            attempt = w.task
            w.task = None
            if attempt is not None:
                # The in-flight attempt never completed through no fault
                # of the task; don't charge it against the retry budget.
                attempt.attempts -= 1
                ready.append(attempt)
            w.destroy(graceful=False)
        pool.clear()

    def _drain_serial(self, ready, delayed) -> Iterator[TaskReport]:
        """In-process execution of everything left (no deadlines)."""
        while ready or delayed:
            now = time.monotonic()
            self._promote_ready(ready, delayed, now)
            if not ready:
                time.sleep(self._next_wakeup_s(delayed, [], now))
                continue
            attempt = ready.popleft()
            attempt.attempts += 1
            self._event("serial", task=attempt.task_id)
            try:
                value = self.task_fn(attempt.payload)
            except Exception as exc:
                if self._schedule_retry(
                    attempt, "exception", ready, delayed, time.monotonic()
                ):
                    continue
                yield TaskReport(
                    task_id=attempt.task_id,
                    failure=TaskFailure(
                        error_type=type(exc).__name__,
                        message=str(exc),
                        traceback_text=traceback.format_exc(),
                    ),
                    value=exc,
                    attempts=attempt.attempts,
                    last_signal="exception",
                    serial=True,
                )
                continue
            report = self._finish_value(
                attempt, value, ready, delayed, time.monotonic(), serial=True
            )
            if report is not None:
                yield report
