"""Parallel experiment engine: fan the evaluation grid over processes.

The paper's evaluation (Figs 11-14, Table III) is a grid of independent
full-system DES runs — a (scheme x workload x seed x config-variant)
product where no cell reads another cell's output.  That shape is
embarrassingly parallel, and :class:`SweepEngine` exploits it:

* **Supervised multiprocess fan-out** — cells are distributed over the
  :class:`~repro.parallel.supervisor.WorkerSupervisor`'s worker pool
  (idle workers steal the next cell), which adds per-cell deadlines,
  worker-death detection, bounded retry with deterministic backoff, and
  serial fallback when process isolation keeps failing
  (``docs/RESILIENCE.md``) on top of plain parallelism.
* **Determinism** — each cell's seed is a pure function of the grid
  coordinates (``SeedSequence``-derived for replicated-seed studies),
  never of worker identity or completion order, and rows are reassembled
  in grid order; a ``workers=N`` sweep is bit-identical to ``workers=1``,
  and a zero-fault supervised run is bit-identical to an unsupervised
  one.
* **Per-worker trace reuse** — a worker generates each workload's trace
  once (bounded ``lru_cache``) and reuses it for every scheme cell it
  services, instead of regenerating per cell.
* **Result caching** — cells are content-addressed in the on-disk
  :class:`~repro.parallel.resultcache.ResultCache`; hits skip trace
  generation and the DES entirely.
* **Checkpoint / resume** — with a :class:`~repro.parallel.journal.
  SweepJournal` attached, every completed cell is durably journaled;
  ``run(resume=True)`` replays journaled cells without re-executing
  them, so a crashed sweep continues where it died.
* **Structured failure capture** — a crashed cell becomes a
  :class:`CellError` row carrying the traceback plus its ``attempts``
  and ``last_signal``; the rest of the grid completes.  Legacy callers
  that want fail-fast semantics use :meth:`SweepResult.raise_errors`.

:func:`parallel_map` is the small sibling used by the ablation and
crossover sweeps: an ordered, fail-fast supervised map that degrades to
a plain loop at ``workers=1``.
"""

from __future__ import annotations

import dataclasses
import os
import signal as _signal
import time
import traceback
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.config import SystemConfig, default_config
from repro.fastpath import (
    FastpathEnvelopeError,
    build_certificate,
    classify,
    recheck_rows,
    select_recheck_indices,
    write_certificate,
)
from repro.fastpath.recheck import DEFAULT_RECHECK_FRACTION
from repro.parallel.journal import (
    StaleJournalError,
    SweepJournal,
    journal_cell_key,
)
from repro.parallel.resultcache import (
    ResultCache,
    cache_disabled_by_env,
    code_salt,
    default_cache_dir,
)
from repro.parallel.supervisor import RetryPolicy, WorkerSupervisor, WorkerTaskError
from repro.trace.record import Trace
from repro.trace.workloads import WORKLOAD_NAMES
from repro.util import kernelstats

__all__ = [
    "CellError",
    "CellOutcome",
    "PlannedCell",
    "SweepCell",
    "SweepCellError",
    "SweepEngine",
    "SweepResult",
    "SweepStats",
    "FASTPATH_MODES",
    "default_workers",
    "derive_cell_seeds",
    "execute_cell_payload",
    "parallel_map",
]


#: Fastpath lane policies: ``off`` (DES everywhere, the byte-compatible
#: default), ``auto`` (analytic lane inside the envelope, DES outside),
#: ``force`` (analytic lane or :class:`FastpathEnvelopeError`).
FASTPATH_MODES = ("off", "auto", "force")


def default_workers() -> int:
    """Sensible worker count: the machine's cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def derive_cell_seeds(root_seed: int, n: int) -> tuple[int, ...]:
    """Derive ``n`` independent per-replica seeds from one root seed.

    ``SeedSequence.spawn`` guarantees the children are statistically
    independent and — crucially for parallel determinism — each child is
    a pure function of ``(root_seed, index)``: the derivation never
    observes worker identity, scheduling order, or wall clock, so a
    parallel sweep prices replica *i* identically to a serial one.
    """
    if n < 1:
        raise ValueError("need at least one seed")
    children = np.random.SeedSequence(root_seed).spawn(n)
    return tuple(int(child.generate_state(1)[0]) for child in children)


# ----------------------------------------------------------------------
# Grid cells and outcomes.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """Coordinates of one grid cell."""

    workload: str
    scheme: str
    seed: int
    variant: str = "default"


@dataclass(frozen=True)
class CellError:
    """Structured capture of one failed cell (the sweep survives).

    ``attempts`` counts every execution the supervisor charged to the
    cell (1 for an unsupervised / serial failure); ``last_signal`` names
    the final failure mode — ``"exception"``, ``"timeout"``, or the
    worker's ``"exit:<code>"``.
    """

    workload: str
    scheme: str
    seed: int
    variant: str
    error_type: str
    message: str
    traceback_text: str
    attempts: int = 1
    last_signal: str = ""

    def format(self) -> str:
        suffix = ""
        if self.attempts > 1 or self.last_signal:
            suffix = (
                f" [attempts={self.attempts}"
                + (f", {self.last_signal}" if self.last_signal else "")
                + "]"
            )
        return (
            f"[{self.variant}] {self.workload} x {self.scheme} "
            f"(seed {self.seed}): {self.error_type}: {self.message}{suffix}"
        )


@dataclass(frozen=True)
class CellOutcome:
    """One cell's terminal state: a result row or an error, maybe replayed."""

    cell: SweepCell
    row: object | None = None          # ExperimentResult on success
    error: CellError | None = None
    cached: bool = False
    resumed: bool = False              # replayed from the sweep journal


@dataclass(frozen=True)
class PlannedCell:
    """One grid cell fully resolved for execution or content addressing.

    Produced by :meth:`SweepEngine.plan`; the ``payload`` is exactly
    what :func:`execute_cell_payload` (and the worker pool) consumes,
    and the keys are the same content addresses :meth:`SweepEngine.run`
    uses — so an external scheduler (``repro.service``) that plans via
    the engine dedups and caches identically to a serial run.
    """

    index: int
    cell: SweepCell
    payload: tuple
    cache_key: str | None      # None when the engine has no cache
    journal_key: str           # code-salted journal content address
    lane: str = "des"          # "des" | "fastpath" (payload's last element)
    lane_reasons: tuple[str, ...] = ()   # why a cell stayed on the DES lane


class SweepCellError(RuntimeError):
    """Raised by :meth:`SweepResult.raise_errors` for fail-fast callers.

    The exception message is a one-line-per-cell summary (attempt counts
    included); the full tracebacks stay available on :attr:`errors` /
    :attr:`tracebacks` instead of flooding the terminal N times over.
    """

    def __init__(self, errors: list[CellError]) -> None:
        self.errors = errors
        lines = "\n".join(f"  {e.format()}" for e in errors)
        super().__init__(
            f"{len(errors)} sweep cell(s) failed:\n{lines}\n"
            "(full tracebacks on the exception's .tracebacks attribute)"
        )

    @property
    def tracebacks(self) -> list[str]:
        """Full per-cell tracebacks, in :attr:`errors` order."""
        return [e.traceback_text for e in self.errors]


@dataclass
class SweepStats:
    """Execution accounting for one :meth:`SweepEngine.run`."""

    cells: int = 0
    executed: int = 0       # cells that actually ran the DES
    cache_hits: int = 0
    cache_stores: int = 0
    resumed: int = 0        # cells replayed from the sweep journal
    errors: int = 0
    workers: int = 1
    wall_s: float = 0.0
    # Supervisor accounting (all zero on a fault-free run).
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    replacements: int = 0
    serial_cells: int = 0   # cells drained by the serial fallback
    # Lane accounting (see docs/PERFORMANCE.md).
    fastpath_cells: int = 0
    des_cells: int = 0
    recheck_samples: int = 0
    recheck_divergences: int = 0
    # Kernel dispatch deltas observed in this (parent) process during the
    # run; workers keep their own process-local counters.
    vectorized_kernel_calls: int = 0
    scalar_kernel_calls: int = 0

    def to_dict(self) -> dict:
        return {
            "cells": self.cells,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_stores": self.cache_stores,
            "resumed": self.resumed,
            "errors": self.errors,
            "workers": self.workers,
            "wall_s": self.wall_s,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "replacements": self.replacements,
            "serial_cells": self.serial_cells,
            "fastpath_cells": self.fastpath_cells,
            "des_cells": self.des_cells,
            "recheck_samples": self.recheck_samples,
            "recheck_divergences": self.recheck_divergences,
            "vectorized_kernel_calls": self.vectorized_kernel_calls,
            "scalar_kernel_calls": self.scalar_kernel_calls,
        }


@dataclass
class SweepResult:
    """Grid outcomes in deterministic grid order, plus run statistics.

    ``certificate`` is the per-run lane audit document
    (:mod:`repro.fastpath.certificate`): which lane produced each row,
    and the sampled differential recheck's evidence.
    """

    outcomes: list[CellOutcome]
    stats: SweepStats
    certificate: dict | None = None

    @property
    def rows(self) -> list:
        """Successful :class:`ExperimentResult` rows, in grid order."""
        return [o.row for o in self.outcomes if o.row is not None]

    @property
    def errors(self) -> list[CellError]:
        return [o.error for o in self.outcomes if o.error is not None]

    def raise_errors(self) -> None:
        """Propagate cell failures the way a serial loop would have."""
        errors = self.errors
        if errors:
            raise SweepCellError(errors)


# ----------------------------------------------------------------------
# The per-cell unit of work.  Everything below must stay top-level and
# picklable: pool workers import this module and receive plain tuples.
# ----------------------------------------------------------------------
@lru_cache(maxsize=4)
def _config_from_json(config_json: str) -> SystemConfig:
    return SystemConfig.from_json(config_json)


@lru_cache(maxsize=16)
def _trace_for(
    workload: str, requests_per_core: int, num_cores: int, seed: int
) -> Trace:
    """Per-process trace cache: one generation per (workload, seed) per
    worker, shared by every scheme cell the worker services."""
    from repro.trace.synthetic import generate_trace

    return generate_trace(
        workload, requests_per_core, num_cores=num_cores, seed=seed
    )


def _execute_cell(trace: Trace, workload: str, scheme: str, config: SystemConfig):
    """Price + simulate one (trace, scheme) cell -> ExperimentResult.

    Fields are coerced to builtin ``float``/``int`` so a freshly computed
    row is byte-identical to the same row after a JSON cache round-trip.
    """
    from repro.experiments.fullsystem import (
        precompute_write_service,
        run_fullsystem,
    )
    from repro.experiments.runner import ExperimentResult

    table = precompute_write_service(trace, scheme, config)
    res = run_fullsystem(trace, scheme, config, table=table)
    return ExperimentResult(
        workload=workload,
        scheme=scheme,
        read_latency_ns=float(res.mean_read_latency_ns),
        write_latency_ns=float(res.mean_write_latency_ns),
        ipc=float(res.ipc),
        runtime_ns=float(res.runtime_ns),
        mean_write_units=float(table.mean_units()),
        mean_write_energy=float(table.energy.mean()) if table.energy.size else 0.0,
        forwarded_reads=int(res.controller.forwarded_reads),
        events=int(res.events),
    )


def _execute_cell_fastpath(
    trace: Trace, workload: str, scheme: str, config: SystemConfig
):
    """Price one cell analytically -> ExperimentResult (no DES).

    Same field coercion contract as :func:`_execute_cell`;
    ``events == 0`` marks the analytic lane in every artifact.
    """
    from repro.experiments.runner import ExperimentResult
    from repro.fastpath.pricer import price_cell

    return ExperimentResult(**price_cell(trace, workload, scheme, config))


def _chaos_inject(workload: str, scheme: str) -> None:
    """Deterministic fault injection for the chaos suite (off by default).

    ``REPRO_CHAOS_KILL_ONCE=<flag-file>:<workload>:<scheme>`` SIGKILLs
    the process servicing that cell — once: the flag file is consumed
    *before* the kill, so the supervisor's retry runs clean.
    ``REPRO_CHAOS_HANG=<workload>:<scheme>:<seconds>`` sleeps the cell
    on every attempt, tripping the supervisor deadline.  Both gates are
    unset in production; the cost of the check is two env lookups.
    """
    spec = os.environ.get("REPRO_CHAOS_KILL_ONCE", "")
    if spec:
        flag, w, s = spec.rsplit(":", 2)
        if w == workload and s == scheme:
            try:
                os.unlink(flag)
            except OSError:
                return  # flag already consumed: this attempt runs clean
            os.kill(os.getpid(), _signal.SIGKILL)
    spec = os.environ.get("REPRO_CHAOS_HANG", "")
    if spec:
        w, s, seconds = spec.rsplit(":", 2)
        if w == workload and s == scheme:
            time.sleep(float(seconds))


def _run_cell(payload: tuple):
    """Supervised task: run one cell, returning ``(idx, row | CellError)``.

    The broad except is the structured-failure boundary: the exception is
    converted into a :class:`CellError` row (type, message, traceback)
    and returned to the parent, so one poisoned cell cannot kill the
    whole grid.
    """
    (
        idx,
        workload,
        scheme,
        seed,
        variant,
        requests_per_core,
        config_json,
        trace,
        lane,
    ) = payload
    try:
        _chaos_inject(workload, scheme)
        config = _config_from_json(config_json)
        if trace is None:
            trace = _trace_for(
                workload, requests_per_core, config.cpu.num_cores, seed
            )
        if lane == "fastpath":
            return idx, _execute_cell_fastpath(trace, workload, scheme, config)
        return idx, _execute_cell(trace, workload, scheme, config)
    except Exception as exc:
        return idx, CellError(
            workload=workload,
            scheme=scheme,
            seed=seed,
            variant=variant,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback_text=traceback.format_exc(),
        )


def execute_cell_payload(payload: tuple):
    """Execute one :class:`PlannedCell` payload -> ``(idx, row | CellError)``.

    Public, picklable entry point for external executors (the sweep
    service's worker pool): running a planned payload here traverses
    exactly the code a serial :meth:`SweepEngine.run` would, so the
    resulting rows are byte-identical.
    """
    return _run_cell(payload)


def _cell_retry_signal(value) -> str | None:
    """Supervisor value classifier: CellError rows are retryable failures."""
    return "exception" if isinstance(value[1], CellError) else None


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------
class SweepEngine:
    """Run (scheme x workload x seed x variant) grids, parallel + cached.

    Parameters
    ----------
    config:
        Base :class:`SystemConfig`; defaults to the paper's Table II.
    variants:
        Optional named config variants (``{name: SystemConfig}``) adding
        a fourth grid axis; ``None`` runs only the base config under the
        variant name ``"default"``.
    requests_per_core:
        Synthetic trace length per core (ignored for supplied traces).
    root_seed:
        Trace seed for single-seed grids, and the root that
        :func:`derive_cell_seeds` expands for replicated-seed grids.
    workers:
        Process count; ``1`` (the default) runs inline with zero
        multiprocessing machinery on exactly the same per-cell code.
    cache:
        ``None`` (default) enables the on-disk result cache unless the
        ``REPRO_NO_CACHE`` environment variable is set; ``True`` forces
        it on; ``False`` disables it; a :class:`ResultCache` instance is
        used as-is.
    cache_dir:
        Store location override (default: ``REPRO_CACHE_DIR`` or
        ``~/.cache/tetris-write/results``).
    traces:
        Optional pre-built traces (``{workload: Trace}``); matching
        workloads skip synthetic generation and are content-fingerprinted
        for cache keying.
    journal:
        Optional sweep checkpoint: a :class:`SweepJournal`, or a path to
        create one at.  Every completed cell is durably appended;
        ``run(resume=True)`` replays journaled cells without
        re-executing them.
    retry:
        :class:`RetryPolicy` for the worker supervisor (defaults shared
        with ``docs/RESILIENCE.md``).
    cell_deadline_s:
        Per-cell wall-clock deadline override.  ``None`` (default)
        scales the deadline by trace size via the policy
        (:meth:`RetryPolicy.deadline_s`); ``0`` disables deadlines.
    fastpath:
        Lane policy, one of :data:`FASTPATH_MODES`.  ``"off"`` (the
        default — library callers keep byte-identical DES behaviour)
        runs every cell through the DES; ``"auto"`` prices
        envelope-inside cells analytically; ``"force"`` raises
        :class:`~repro.fastpath.FastpathEnvelopeError` for any cell the
        envelope rejects.  ``REPRO_NO_FASTPATH=1`` overrides any mode
        to ``"off"`` (kill switch).
    recheck_fraction:
        Fraction of fastpath cells re-run through the DES and compared
        under the agreement bands after the grid completes (seeded
        sampling, min 1 when any fastpath cell exists; ``0`` disables).
    certificate_path:
        When set, the run's lane certificate is also written to this
        path as JSON (it is always attached to the
        :class:`SweepResult`).
    """

    def __init__(
        self,
        *,
        config: SystemConfig | None = None,
        variants: dict[str, SystemConfig] | None = None,
        requests_per_core: int = 4000,
        root_seed: int = 20160816,
        workers: int = 1,
        cache: object | None = None,
        cache_dir: str | Path | None = None,
        traces: dict[str, Trace] | None = None,
        journal: SweepJournal | str | Path | None = None,
        retry: RetryPolicy | None = None,
        cell_deadline_s: float | None = None,
        fastpath: str = "off",
        recheck_fraction: float = DEFAULT_RECHECK_FRACTION,
        certificate_path: str | Path | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if fastpath not in FASTPATH_MODES:
            raise ValueError(
                f"fastpath must be one of {FASTPATH_MODES}, got {fastpath!r}"
            )
        if not 0.0 <= recheck_fraction <= 1.0:
            raise ValueError("recheck_fraction must be in [0, 1]")
        self.base_config = config if config is not None else default_config()
        self.variants = dict(variants) if variants else {"default": self.base_config}
        self.requests_per_core = int(requests_per_core)
        self.root_seed = int(root_seed)
        self.workers = int(workers)
        self.traces = dict(traces) if traces else {}
        self.cache = self._resolve_cache(cache, cache_dir)
        if journal is None or isinstance(journal, SweepJournal):
            self.journal = journal
        else:
            self.journal = SweepJournal(journal)
        self.retry = retry if retry is not None else RetryPolicy()
        self.cell_deadline_s = cell_deadline_s
        self.fastpath = fastpath
        self.recheck_fraction = float(recheck_fraction)
        self.certificate_path = (
            str(certificate_path) if certificate_path is not None else None
        )
        self.supervisor: WorkerSupervisor | None = None  # last run's, if any

    @staticmethod
    def _resolve_cache(cache, cache_dir) -> ResultCache | None:
        if isinstance(cache, ResultCache):
            return cache
        if cache is False:
            return None
        if cache is None and cache_disabled_by_env():
            return None
        root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        return ResultCache(root)

    # ------------------------------------------------------------------
    def grid(
        self,
        schemes: tuple[str, ...],
        workloads: tuple[str, ...] = WORKLOAD_NAMES,
        *,
        seeds: int | tuple[int, ...] | None = None,
    ) -> list[SweepCell]:
        """Enumerate cells in the deterministic grid order rows use:
        variant-major, then seed, then workload, with schemes innermost
        (the order the serial runner produced)."""
        if seeds is None:
            seed_list: tuple[int, ...] = (self.root_seed,)
        elif isinstance(seeds, int):
            seed_list = derive_cell_seeds(self.root_seed, seeds)
        else:
            seed_list = tuple(int(s) for s in seeds)
        return [
            SweepCell(workload=w, scheme=s, seed=seed, variant=v)
            for v in self.variants
            for seed in seed_list
            for w in workloads
            for s in schemes
        ]

    def _trace_key(self, cell: SweepCell, config: SystemConfig) -> str:
        """Cache-key component identifying the cell's trace.

        Supplied traces hash their full content; synthetic ones are
        identified by their generation coordinates (the generator itself
        is covered by the cache's code salt).
        """
        trace = self.traces.get(cell.workload)
        if trace is not None:
            return f"content:{trace.fingerprint()}"
        return (
            f"synthetic:{cell.workload}:{self.requests_per_core}:"
            f"{config.cpu.num_cores}:{cell.seed}"
        )

    def _salt(self) -> str:
        """Code-version salt shared by cache and journal addressing."""
        return self.cache.salt if self.cache is not None else code_salt()

    def fastpath_mode(self) -> str:
        """Effective lane policy: the env kill switch beats the setting."""
        if os.environ.get("REPRO_NO_FASTPATH", "") == "1":
            return "off"
        return self.fastpath

    def _lane_for(self, cell: SweepCell) -> tuple[str, tuple[str, ...]]:
        """Assign a cell's execution lane under the effective policy.

        Returns ``(lane, reasons)``; ``reasons`` explains a DES routing
        (empty for fastpath cells) and lands in the run certificate.
        """
        mode = self.fastpath_mode()
        if mode == "off":
            return "des", ("fastpath-off",)
        decision = classify(
            self.variants[cell.variant],
            cell.scheme,
            supplied_trace=cell.workload in self.traces,
        )
        if decision.inside:
            return "fastpath", ()
        if mode == "force":
            raise FastpathEnvelopeError(
                cell.scheme, cell.workload, decision.reasons
            )
        return "des", decision.reasons

    def _cache_key(self, cell: SweepCell, config_json: str, lane: str) -> str | None:
        if self.cache is None:
            return None
        return self.cache.cell_key(
            config_json=config_json,
            trace_key=self._trace_key(cell, self.variants[cell.variant]),
            scheme=cell.scheme,
            lane=lane,
        )

    def _journal_key(self, cell: SweepCell, config_json: str, lane: str) -> str:
        return journal_cell_key(
            config_json=config_json,
            trace_key=self._trace_key(cell, self.variants[cell.variant]),
            scheme=cell.scheme,
            salt=self._salt(),
            lane=lane,
        )

    def _journal_append(self, key: str, cell: SweepCell, row_dict: dict) -> None:
        if self.journal is not None:
            self.journal.append(
                key,
                row_dict,
                meta={
                    "scheme": cell.scheme,
                    "workload": cell.workload,
                    "seed": cell.seed,
                    "variant": cell.variant,
                    # Stamping the salt lets a later resume distinguish
                    # "journal from other sources" (StaleJournalError)
                    # from "journal for a different grid".
                    "salt": self._salt(),
                },
            )

    # ------------------------------------------------------------------
    def plan(
        self,
        schemes: tuple[str, ...],
        workloads: tuple[str, ...] = WORKLOAD_NAMES,
        *,
        seeds: int | tuple[int, ...] | None = None,
    ) -> list[PlannedCell]:
        """Resolve the grid into executable, content-addressed cells.

        Each :class:`PlannedCell` carries the worker payload plus the
        cache and journal keys :meth:`run` itself would compute, in grid
        order.  The sweep service plans through this method so its
        dedup, caching, and results are bit-identical to a serial run.
        """
        cells = self.grid(tuple(schemes), tuple(workloads), seeds=seeds)
        config_json = {
            name: cfg.canonical_json() for name, cfg in self.variants.items()
        }
        planned: list[PlannedCell] = []
        for idx, cell in enumerate(cells):
            cfg = config_json[cell.variant]
            lane, reasons = self._lane_for(cell)
            planned.append(
                PlannedCell(
                    index=idx,
                    cell=cell,
                    payload=(
                        idx,
                        cell.workload,
                        cell.scheme,
                        cell.seed,
                        cell.variant,
                        self.requests_per_core,
                        cfg,
                        self.traces.get(cell.workload),
                        lane,
                    ),
                    cache_key=self._cache_key(cell, cfg, lane),
                    journal_key=self._journal_key(cell, cfg, lane),
                    lane=lane,
                    lane_reasons=reasons,
                )
            )
        return planned

    # ------------------------------------------------------------------
    def run(
        self,
        schemes: tuple[str, ...],
        workloads: tuple[str, ...] = WORKLOAD_NAMES,
        *,
        seeds: int | tuple[int, ...] | None = None,
        resume: bool = False,
    ) -> SweepResult:
        """Run the grid and return outcomes in grid order.

        With ``resume=True`` (requires a journal) cells already recorded
        in the journal are replayed from it — zero re-execution — and
        the reassembled grid is byte-identical to an uninterrupted run.
        """
        from repro.experiments.runner import ExperimentResult

        start = time.perf_counter()
        kernels_before = kernelstats.snapshot()
        self.supervisor = None
        planned = self.plan(tuple(schemes), tuple(workloads), seeds=seeds)
        cells = [pc.cell for pc in planned]
        journaled: dict[str, dict] = {}
        if resume:
            if self.journal is None:
                raise ValueError("resume=True requires a journal")
            journaled = self.journal.load()

        outcomes: dict[int, CellOutcome] = {}
        pending: list[tuple] = []       # worker payloads for cache misses
        pending_keys: dict[int, tuple[str | None, str | None, str]] = {}
        resumed = 0
        for pc in planned:
            idx, cell, jkey = pc.index, pc.cell, pc.journal_key
            if resume and jkey in journaled:
                outcomes[idx] = CellOutcome(
                    cell,
                    row=ExperimentResult(**journaled[jkey]),
                    resumed=True,
                )
                resumed += 1
                continue
            if pc.cache_key is not None:
                row_dict = self.cache.get(pc.cache_key)
                if row_dict is not None:
                    outcomes[idx] = CellOutcome(
                        cell, row=ExperimentResult(**row_dict), cached=True
                    )
                    self._journal_append(jkey, cell, row_dict)
                    continue
            pending_keys[idx] = (pc.cache_key, jkey, pc.lane)
            pending.append(pc.payload)

        if (
            resume
            and journaled
            and planned
            and resumed == 0
            and self.journal.salts
            and self._salt() not in self.journal.salts
        ):
            # Journal keys embed the code salt: after a source change
            # every lookup would miss and the "resume" would silently
            # re-execute the whole grid.  Fail loudly instead.
            raise StaleJournalError(
                f"stale journal (code changed); re-run without --resume "
                f"or compact: {self.journal.path} was written under code "
                f"salt(s) {sorted(self.journal.salts)} but the current "
                f"sources hash to {self._salt()}"
            )

        for idx, result in self._execute(pending):
            cell = cells[idx]
            if isinstance(result, CellError):
                outcomes[idx] = CellOutcome(cell, error=result)
            else:
                outcomes[idx] = CellOutcome(cell, row=result)
                key, jkey, lane = pending_keys[idx]
                row_dict = dataclasses.asdict(result)
                if self.cache is not None and key is not None:
                    self.cache.put(
                        key,
                        row_dict,
                        meta={
                            "scheme": cell.scheme,
                            "workload": cell.workload,
                            "seed": cell.seed,
                            "variant": cell.variant,
                            "lane": lane,
                            "salt": self.cache.salt,
                        },
                    )
                if jkey is not None:
                    self._journal_append(jkey, cell, row_dict)

        recheck_records = self._recheck(planned, outcomes)
        certificate = self._certificate(planned, outcomes, recheck_records)
        if self.certificate_path:
            write_certificate(self.certificate_path, certificate)

        ordered = [outcomes[i] for i in range(len(cells))]
        sup = self.supervisor
        counts = sup.counts() if sup is not None else {}
        kernels_after = kernelstats.snapshot()
        stats = SweepStats(
            cells=len(cells),
            executed=len(pending),
            cache_hits=self.cache.stats.hits if self.cache else 0,
            cache_stores=self.cache.stats.stores if self.cache else 0,
            resumed=resumed,
            errors=sum(1 for o in ordered if o.error is not None),
            workers=self.workers,
            wall_s=time.perf_counter() - start,
            retries=counts.get("retries", 0),
            timeouts=counts.get("timeouts", 0),
            worker_deaths=counts.get("worker_deaths", 0),
            replacements=counts.get("replacements", 0),
            serial_cells=counts.get("serial_tasks", 0),
            fastpath_cells=sum(1 for pc in planned if pc.lane == "fastpath"),
            des_cells=sum(1 for pc in planned if pc.lane == "des"),
            recheck_samples=len(recheck_records),
            recheck_divergences=sum(
                1 for r in recheck_records if r["divergences"]
            ),
            vectorized_kernel_calls=(
                kernels_after["vectorized"] - kernels_before["vectorized"]
            ),
            scalar_kernel_calls=(
                kernels_after["scalar"] - kernels_before["scalar"]
            ),
        )
        return SweepResult(outcomes=ordered, stats=stats, certificate=certificate)

    # ------------------------------------------------------------------
    def _recheck(
        self, planned: list[PlannedCell], outcomes: dict[int, CellOutcome]
    ) -> list[dict]:
        """Differentially re-run a seeded sample of fastpath cells on DES.

        Each sampled cell's analytic row is compared field-by-field
        against a fresh (cache-first) DES execution of the identical
        payload; any field outside :data:`FIELD_TOLERANCES` is recorded
        as a divergence in the run certificate.  Re-runs do not count as
        executed cells in :class:`SweepStats` — they are a validation
        overlay, not part of the grid.
        """
        candidates = [
            pc.index
            for pc in planned
            if pc.lane == "fastpath" and outcomes[pc.index].row is not None
        ]
        if not candidates:
            return []
        sample = select_recheck_indices(
            candidates, self.recheck_fraction, self.root_seed
        )
        by_index = {pc.index: pc for pc in planned}

        def des_runner(index: int) -> dict:
            pc = by_index[index]
            config_json = pc.payload[6]
            des_key = self._cache_key(pc.cell, config_json, "des")
            if des_key is not None:
                cached = self.cache.get(des_key)
                if cached is not None:
                    return cached
            _, result = _run_cell(pc.payload[:-1] + ("des",))
            if isinstance(result, CellError):
                raise RuntimeError(
                    "differential recheck could not execute the DES lane "
                    f"for cell {index} ({pc.cell.workload}/{pc.cell.scheme}):\n"
                    f"{result.format()}"
                )
            row_dict = dataclasses.asdict(result)
            if des_key is not None:
                self.cache.put(
                    des_key,
                    row_dict,
                    meta={
                        "scheme": pc.cell.scheme,
                        "workload": pc.cell.workload,
                        "seed": pc.cell.seed,
                        "variant": pc.cell.variant,
                        "lane": "des",
                        "salt": self.cache.salt,
                    },
                )
            return row_dict

        samples = [
            (i, dataclasses.asdict(outcomes[i].row)) for i in sample
        ]
        records = recheck_rows(samples, des_runner)
        for rec in records:
            cell = by_index[rec["index"]].cell
            rec["workload"] = cell.workload
            rec["scheme"] = cell.scheme
            rec["seed"] = cell.seed
            rec["variant"] = cell.variant
        return records

    def _certificate(
        self,
        planned: list[PlannedCell],
        outcomes: dict[int, CellOutcome],
        recheck_records: list[dict],
    ) -> dict:
        """Build the per-run lane certificate (always, even fastpath=off)."""
        cert_cells = []
        for pc in planned:
            o = outcomes[pc.index]
            if o.error is not None:
                source = "error"
            elif o.resumed:
                source = "journal"
            elif o.cached:
                source = "cache"
            else:
                source = "executed"
            cert_cells.append(
                {
                    "index": pc.index,
                    "workload": pc.cell.workload,
                    "scheme": pc.cell.scheme,
                    "seed": pc.cell.seed,
                    "variant": pc.cell.variant,
                    "lane": pc.lane,
                    "source": source,
                    "reasons": list(pc.lane_reasons),
                }
            )
        return build_certificate(
            mode=self.fastpath_mode(),
            recheck_fraction=self.recheck_fraction,
            cells=cert_cells,
            rechecks=recheck_records,
        )

    # ------------------------------------------------------------------
    def _cell_deadline(self) -> float | None:
        """Effective per-cell deadline (seconds), or None when disabled."""
        if self.cell_deadline_s is not None:
            return self.cell_deadline_s if self.cell_deadline_s > 0 else None
        return self.retry.deadline_s(self.requests_per_core)

    def _execute(self, payloads: list[tuple]):
        """Yield ``(idx, row-or-error)`` for every payload.

        Serial mode runs the exact same ``_run_cell`` per payload, so
        parallel and serial cells traverse identical code.  Parallel
        mode hands the payloads to a :class:`WorkerSupervisor`: idle
        workers steal the next cell (payloads follow the grid's
        workload-major order, so a worker's trace cache keeps hitting),
        and hung / killed / crashing cells are retried, quarantined, or
        drained serially per ``docs/RESILIENCE.md``.
        """
        if not payloads:
            return
        workers = min(self.workers, len(payloads))
        if workers <= 1:
            for payload in payloads:
                yield _run_cell(payload)
            return
        deadline_s = self._cell_deadline()
        self.supervisor = WorkerSupervisor(
            _run_cell,
            workers=workers,
            policy=self.retry,
            deadline_for=(lambda payload: deadline_s),
            retry_value_signal=_cell_retry_signal,
            name="sweep",
        )
        for report in self.supervisor.run((p[0], p) for p in payloads):
            if report.failure is not None:
                # The cell never produced a value: synthesize the error
                # row from the payload coordinates.
                payload = next(p for p in payloads if p[0] == report.task_id)
                yield report.task_id, CellError(
                    workload=payload[1],
                    scheme=payload[2],
                    seed=payload[3],
                    variant=payload[4],
                    error_type=report.failure.error_type,
                    message=report.failure.message,
                    traceback_text=report.failure.traceback_text,
                    attempts=report.attempts,
                    last_signal=report.last_signal,
                )
                continue
            idx, result = report.value
            if isinstance(result, CellError) and (
                report.attempts > 1 or report.last_signal
            ):
                result = dataclasses.replace(
                    result,
                    attempts=report.attempts,
                    last_signal=report.last_signal or "exception",
                )
            yield idx, result


# ----------------------------------------------------------------------
# Ordered fail-fast map for the ablation / crossover sweeps.
# ----------------------------------------------------------------------
def _map_task(payload: tuple):
    """Supervised task for :func:`parallel_map`: ``(fn, item) -> fn(item)``."""
    fn, item = payload
    return fn(item)


def parallel_map(fn, items, *, workers: int = 1, chunksize: int = 1) -> list:
    """Map ``fn`` over ``items`` preserving order, optionally in a pool.

    Unlike :class:`SweepEngine`, failures propagate immediately (the
    ablation sweeps are small and their points are not independent
    experiment artifacts worth salvaging): a task exception is re-raised
    in the parent, and a worker death raises
    :class:`~repro.parallel.supervisor.WorkerTaskError`.  ``fn`` and
    every item must be picklable when ``workers > 1``.  ``chunksize``
    is accepted for backward compatibility; dispatch is per item.
    """
    items = list(items)
    if not items:
        return []
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    supervisor = WorkerSupervisor(
        _map_task,
        workers=min(workers, len(items)),
        policy=RetryPolicy(max_retries=0),
        name="map",
    )
    results: list = [None] * len(items)
    for report in supervisor.run(
        (i, (fn, item)) for i, item in enumerate(items)
    ):
        if report.failure is not None:
            if isinstance(report.value, BaseException):
                raise report.value
            raise WorkerTaskError(report.failure)
        results[report.task_id] = report.value
    return results
