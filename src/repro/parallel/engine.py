"""Parallel experiment engine: fan the evaluation grid over processes.

The paper's evaluation (Figs 11-14, Table III) is a grid of independent
full-system DES runs — a (scheme x workload x seed x config-variant)
product where no cell reads another cell's output.  That shape is
embarrassingly parallel, and :class:`SweepEngine` exploits it:

* **Multiprocess fan-out** — cells are distributed over a
  ``multiprocessing`` pool with chunked dynamic dispatch (idle workers
  steal the next chunk), so wall-clock scales with cores instead of one
  Python interpreter.
* **Determinism** — each cell's seed is a pure function of the grid
  coordinates (``SeedSequence``-derived for replicated-seed studies),
  never of worker identity or completion order, and rows are reassembled
  in grid order; a ``workers=N`` sweep is bit-identical to ``workers=1``.
* **Per-worker trace reuse** — a worker generates each workload's trace
  once (bounded ``lru_cache``) and reuses it for every scheme cell it
  services, instead of regenerating per cell.
* **Result caching** — cells are content-addressed in the on-disk
  :class:`~repro.parallel.resultcache.ResultCache`; hits skip trace
  generation and the DES entirely.
* **Structured failure capture** — a crashed cell becomes a
  :class:`CellError` row carrying the traceback; the rest of the grid
  completes.  Legacy callers that want fail-fast semantics use
  :meth:`SweepResult.raise_errors`.

:func:`parallel_map` is the small sibling used by the ablation and
crossover sweeps: an ordered, fail-fast process-pool map that degrades
to a plain loop at ``workers=1``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.config import SystemConfig, default_config
from repro.parallel.resultcache import (
    ResultCache,
    cache_disabled_by_env,
    default_cache_dir,
)
from repro.trace.record import Trace
from repro.trace.workloads import WORKLOAD_NAMES

__all__ = [
    "CellError",
    "CellOutcome",
    "SweepCell",
    "SweepCellError",
    "SweepEngine",
    "SweepResult",
    "SweepStats",
    "default_workers",
    "derive_cell_seeds",
    "parallel_map",
]


def default_workers() -> int:
    """Sensible worker count: the machine's cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def derive_cell_seeds(root_seed: int, n: int) -> tuple[int, ...]:
    """Derive ``n`` independent per-replica seeds from one root seed.

    ``SeedSequence.spawn`` guarantees the children are statistically
    independent and — crucially for parallel determinism — each child is
    a pure function of ``(root_seed, index)``: the derivation never
    observes worker identity, scheduling order, or wall clock, so a
    parallel sweep prices replica *i* identically to a serial one.
    """
    if n < 1:
        raise ValueError("need at least one seed")
    children = np.random.SeedSequence(root_seed).spawn(n)
    return tuple(int(child.generate_state(1)[0]) for child in children)


# ----------------------------------------------------------------------
# Grid cells and outcomes.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """Coordinates of one grid cell."""

    workload: str
    scheme: str
    seed: int
    variant: str = "default"


@dataclass(frozen=True)
class CellError:
    """Structured capture of one crashed cell (the sweep survives)."""

    workload: str
    scheme: str
    seed: int
    variant: str
    error_type: str
    message: str
    traceback_text: str

    def format(self) -> str:
        return (
            f"[{self.variant}] {self.workload} x {self.scheme} "
            f"(seed {self.seed}): {self.error_type}: {self.message}"
        )


@dataclass(frozen=True)
class CellOutcome:
    """One cell's terminal state: a result row or an error, maybe cached."""

    cell: SweepCell
    row: object | None = None          # ExperimentResult on success
    error: CellError | None = None
    cached: bool = False


class SweepCellError(RuntimeError):
    """Raised by :meth:`SweepResult.raise_errors` for fail-fast callers."""

    def __init__(self, errors: list[CellError]) -> None:
        self.errors = errors
        first = errors[0]
        super().__init__(
            f"{len(errors)} sweep cell(s) failed; first: {first.format()}\n"
            f"{first.traceback_text}"
        )


@dataclass
class SweepStats:
    """Execution accounting for one :meth:`SweepEngine.run`."""

    cells: int = 0
    executed: int = 0       # cells that actually ran the DES
    cache_hits: int = 0
    cache_stores: int = 0
    errors: int = 0
    workers: int = 1
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "cells": self.cells,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_stores": self.cache_stores,
            "errors": self.errors,
            "workers": self.workers,
            "wall_s": self.wall_s,
        }


@dataclass
class SweepResult:
    """Grid outcomes in deterministic grid order, plus run statistics."""

    outcomes: list[CellOutcome]
    stats: SweepStats

    @property
    def rows(self) -> list:
        """Successful :class:`ExperimentResult` rows, in grid order."""
        return [o.row for o in self.outcomes if o.row is not None]

    @property
    def errors(self) -> list[CellError]:
        return [o.error for o in self.outcomes if o.error is not None]

    def raise_errors(self) -> None:
        """Propagate cell failures the way a serial loop would have."""
        errors = self.errors
        if errors:
            raise SweepCellError(errors)


# ----------------------------------------------------------------------
# The per-cell unit of work.  Everything below must stay top-level and
# picklable: pool workers import this module and receive plain tuples.
# ----------------------------------------------------------------------
@lru_cache(maxsize=4)
def _config_from_json(config_json: str) -> SystemConfig:
    return SystemConfig.from_json(config_json)


@lru_cache(maxsize=16)
def _trace_for(
    workload: str, requests_per_core: int, num_cores: int, seed: int
) -> Trace:
    """Per-process trace cache: one generation per (workload, seed) per
    worker, shared by every scheme cell the worker services."""
    from repro.trace.synthetic import generate_trace

    return generate_trace(
        workload, requests_per_core, num_cores=num_cores, seed=seed
    )


def _execute_cell(trace: Trace, workload: str, scheme: str, config: SystemConfig):
    """Price + simulate one (trace, scheme) cell -> ExperimentResult.

    Fields are coerced to builtin ``float``/``int`` so a freshly computed
    row is byte-identical to the same row after a JSON cache round-trip.
    """
    from repro.experiments.fullsystem import (
        precompute_write_service,
        run_fullsystem,
    )
    from repro.experiments.runner import ExperimentResult

    table = precompute_write_service(trace, scheme, config)
    res = run_fullsystem(trace, scheme, config, table=table)
    return ExperimentResult(
        workload=workload,
        scheme=scheme,
        read_latency_ns=float(res.mean_read_latency_ns),
        write_latency_ns=float(res.mean_write_latency_ns),
        ipc=float(res.ipc),
        runtime_ns=float(res.runtime_ns),
        mean_write_units=float(table.mean_units()),
        mean_write_energy=float(table.energy.mean()) if table.energy.size else 0.0,
        forwarded_reads=int(res.controller.forwarded_reads),
        events=int(res.events),
    )


def _run_cell(payload: tuple):
    """Pool task: run one cell, returning ``(idx, row | CellError)``.

    The broad except is the structured-failure boundary: the exception is
    converted into a :class:`CellError` row (type, message, traceback)
    and returned to the parent, so one poisoned cell cannot kill the
    whole grid.
    """
    idx, workload, scheme, seed, variant, requests_per_core, config_json, trace = payload
    try:
        config = _config_from_json(config_json)
        if trace is None:
            trace = _trace_for(
                workload, requests_per_core, config.cpu.num_cores, seed
            )
        return idx, _execute_cell(trace, workload, scheme, config)
    except Exception as exc:
        return idx, CellError(
            workload=workload,
            scheme=scheme,
            seed=seed,
            variant=variant,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback_text=traceback.format_exc(),
        )


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------
class SweepEngine:
    """Run (scheme x workload x seed x variant) grids, parallel + cached.

    Parameters
    ----------
    config:
        Base :class:`SystemConfig`; defaults to the paper's Table II.
    variants:
        Optional named config variants (``{name: SystemConfig}``) adding
        a fourth grid axis; ``None`` runs only the base config under the
        variant name ``"default"``.
    requests_per_core:
        Synthetic trace length per core (ignored for supplied traces).
    root_seed:
        Trace seed for single-seed grids, and the root that
        :func:`derive_cell_seeds` expands for replicated-seed grids.
    workers:
        Process count; ``1`` (the default) runs inline with zero
        multiprocessing machinery on exactly the same per-cell code.
    cache:
        ``None`` (default) enables the on-disk result cache unless the
        ``REPRO_NO_CACHE`` environment variable is set; ``True`` forces
        it on; ``False`` disables it; a :class:`ResultCache` instance is
        used as-is.
    cache_dir:
        Store location override (default: ``REPRO_CACHE_DIR`` or
        ``~/.cache/tetris-write/results``).
    traces:
        Optional pre-built traces (``{workload: Trace}``); matching
        workloads skip synthetic generation and are content-fingerprinted
        for cache keying.
    """

    def __init__(
        self,
        *,
        config: SystemConfig | None = None,
        variants: dict[str, SystemConfig] | None = None,
        requests_per_core: int = 4000,
        root_seed: int = 20160816,
        workers: int = 1,
        cache: object | None = None,
        cache_dir: str | Path | None = None,
        traces: dict[str, Trace] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.base_config = config if config is not None else default_config()
        self.variants = dict(variants) if variants else {"default": self.base_config}
        self.requests_per_core = int(requests_per_core)
        self.root_seed = int(root_seed)
        self.workers = int(workers)
        self.traces = dict(traces) if traces else {}
        self.cache = self._resolve_cache(cache, cache_dir)

    @staticmethod
    def _resolve_cache(cache, cache_dir) -> ResultCache | None:
        if isinstance(cache, ResultCache):
            return cache
        if cache is False:
            return None
        if cache is None and cache_disabled_by_env():
            return None
        root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        return ResultCache(root)

    # ------------------------------------------------------------------
    def grid(
        self,
        schemes: tuple[str, ...],
        workloads: tuple[str, ...] = WORKLOAD_NAMES,
        *,
        seeds: int | tuple[int, ...] | None = None,
    ) -> list[SweepCell]:
        """Enumerate cells in the deterministic grid order rows use:
        variant-major, then seed, then workload, with schemes innermost
        (the order the serial runner produced)."""
        if seeds is None:
            seed_list: tuple[int, ...] = (self.root_seed,)
        elif isinstance(seeds, int):
            seed_list = derive_cell_seeds(self.root_seed, seeds)
        else:
            seed_list = tuple(int(s) for s in seeds)
        return [
            SweepCell(workload=w, scheme=s, seed=seed, variant=v)
            for v in self.variants
            for seed in seed_list
            for w in workloads
            for s in schemes
        ]

    def _trace_key(self, cell: SweepCell, config: SystemConfig) -> str:
        """Cache-key component identifying the cell's trace.

        Supplied traces hash their full content; synthetic ones are
        identified by their generation coordinates (the generator itself
        is covered by the cache's code salt).
        """
        trace = self.traces.get(cell.workload)
        if trace is not None:
            return f"content:{trace.fingerprint()}"
        return (
            f"synthetic:{cell.workload}:{self.requests_per_core}:"
            f"{config.cpu.num_cores}:{cell.seed}"
        )

    # ------------------------------------------------------------------
    def run(
        self,
        schemes: tuple[str, ...],
        workloads: tuple[str, ...] = WORKLOAD_NAMES,
        *,
        seeds: int | tuple[int, ...] | None = None,
    ) -> SweepResult:
        """Run the grid and return outcomes in grid order."""
        start = time.perf_counter()
        cells = self.grid(tuple(schemes), tuple(workloads), seeds=seeds)
        config_json = {
            name: cfg.canonical_json() for name, cfg in self.variants.items()
        }

        outcomes: dict[int, CellOutcome] = {}
        pending: list[tuple] = []       # worker payloads for cache misses
        pending_keys: dict[int, str | None] = {}
        for idx, cell in enumerate(cells):
            key = None
            if self.cache is not None:
                key = self.cache.cell_key(
                    config_json=config_json[cell.variant],
                    trace_key=self._trace_key(cell, self.variants[cell.variant]),
                    scheme=cell.scheme,
                )
                row_dict = self.cache.get(key)
                if row_dict is not None:
                    from repro.experiments.runner import ExperimentResult

                    outcomes[idx] = CellOutcome(
                        cell, row=ExperimentResult(**row_dict), cached=True
                    )
                    continue
            pending_keys[idx] = key
            pending.append(
                (
                    idx,
                    cell.workload,
                    cell.scheme,
                    cell.seed,
                    cell.variant,
                    self.requests_per_core,
                    config_json[cell.variant],
                    self.traces.get(cell.workload),
                )
            )

        for idx, result in self._execute(pending):
            cell = cells[idx]
            if isinstance(result, CellError):
                outcomes[idx] = CellOutcome(cell, error=result)
            else:
                outcomes[idx] = CellOutcome(cell, row=result)
                key = pending_keys[idx]
                if self.cache is not None and key is not None:
                    import dataclasses

                    self.cache.put(
                        key,
                        dataclasses.asdict(result),
                        meta={
                            "scheme": cell.scheme,
                            "workload": cell.workload,
                            "seed": cell.seed,
                            "variant": cell.variant,
                            "salt": self.cache.salt,
                        },
                    )

        ordered = [outcomes[i] for i in range(len(cells))]
        stats = SweepStats(
            cells=len(cells),
            executed=len(pending),
            cache_hits=self.cache.stats.hits if self.cache else 0,
            cache_stores=self.cache.stats.stores if self.cache else 0,
            errors=sum(1 for o in ordered if o.error is not None),
            workers=self.workers,
            wall_s=time.perf_counter() - start,
        )
        return SweepResult(outcomes=ordered, stats=stats)

    # ------------------------------------------------------------------
    def _execute(self, payloads: list[tuple]):
        """Yield ``(idx, row-or-error)`` for every payload.

        Serial mode runs the exact same ``_run_cell`` per payload, so
        parallel and serial cells traverse identical code.  Parallel mode
        uses chunked ``imap_unordered`` — completed workers pull the next
        chunk off the shared queue (work stealing), and chunks follow the
        grid's workload-major order so a worker's trace cache keeps
        hitting within a chunk.
        """
        if not payloads:
            return
        workers = min(self.workers, len(payloads))
        if workers <= 1:
            for payload in payloads:
                yield _run_cell(payload)
            return
        chunksize = max(1, -(-len(payloads) // (workers * 4)))
        with multiprocessing.Pool(processes=workers) as pool:
            yield from pool.imap_unordered(_run_cell, payloads, chunksize=chunksize)


# ----------------------------------------------------------------------
# Ordered fail-fast map for the ablation / crossover sweeps.
# ----------------------------------------------------------------------
def parallel_map(fn, items, *, workers: int = 1, chunksize: int = 1) -> list:
    """Map ``fn`` over ``items`` preserving order, optionally in a pool.

    Unlike :class:`SweepEngine`, failures propagate immediately (the
    ablation sweeps are small and their points are not independent
    experiment artifacts worth salvaging).  ``fn`` and every item must be
    picklable when ``workers > 1``.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with multiprocessing.Pool(processes=min(workers, len(items))) as pool:
        return pool.map(fn, items, chunksize=chunksize)
