"""Sweep checkpointing: an append-only, crash-tolerant completion log.

A killed sweep used to restart from zero (or from whatever the result
cache happened to hold).  :class:`SweepJournal` records every completed
cell as one JSONL line — ``{"v", "key", "meta", "row"}`` — beside the
:class:`~repro.parallel.resultcache.ResultCache`, so
``SweepEngine.run(..., resume=True)`` can skip finished work after a
crash and reproduce the uninterrupted run byte-for-byte.

Durability discipline:

* **Append + fsync** — each record is appended and fsync'd before the
  cell is considered journaled, so a crash can lose at most the line
  being written (never a previously acknowledged one).
* **Truncation tolerance** — :meth:`load` parses line by line; a torn
  or corrupt line (the expected crash artifact) is counted in
  :attr:`corrupt_lines` and skipped, never raised.
* **Atomic compaction** — :meth:`compact` rewrites only the valid
  records through a temp file + ``os.replace`` (one atomic segment
  swap), dropping torn tails and duplicate keys.

Keys are content addresses: :func:`journal_cell_key` hashes the cell's
canonical config JSON, trace key, scheme, and the code-version salt, so
a journal written by different sources (or a different grid) can never
leak a stale row into a resumed sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "StaleJournalError",
    "SweepJournal",
    "journal_cell_key",
]

JOURNAL_FORMAT_VERSION = 2


class StaleJournalError(RuntimeError):
    """A resume found a journal written under a different code salt.

    Journal keys embed the code-version salt, so after any simulator
    source change *every* lookup misses — silently re-executing the
    whole grid while claiming to resume.  Raising makes the staleness
    explicit; the caller chooses between a fresh run and compaction.
    """


def journal_cell_key(
    *, config_json: str, trace_key: str, scheme: str, salt: str,
    lane: str = "des",
) -> str:
    """Content address of one journaled cell (code-salted like the cache).

    ``lane`` keeps analytic-fastpath rows and DES rows from satisfying
    each other's resume lookups — the lanes agree only within tolerance.
    """
    h = hashlib.sha256()
    for part in (
        f"journal:{JOURNAL_FORMAT_VERSION}", salt, scheme, trace_key, lane,
        config_json,
    ):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


class SweepJournal:
    """One on-disk completion log rooted at ``path``.

    ``fsync=False`` trades the per-record fsync for speed (tests,
    throwaway sweeps); production resume paths should keep the default.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.corrupt_lines = 0
        self.appended = 0
        self.skipped_duplicates = 0
        self._seen: set[str] = set()
        #: per-key meta of the last :meth:`load` (preserved by compact)
        self.meta: dict[str, dict] = {}
        #: code salts stamped in loaded/appended record meta — the
        #: resume path uses these to tell "different grid" apart from
        #: "journal written by different sources" (StaleJournalError)
        self.salts: set[str] = set()

    # ------------------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """Return ``{key: row}`` for every valid journaled record.

        Corrupt or truncated lines — the normal residue of a crash mid
        append — are skipped and counted in :attr:`corrupt_lines`.
        Later records win on duplicate keys (a re-run re-journaling a
        cell simply confirms it).
        """
        rows: dict[str, dict] = {}
        self.corrupt_lines = 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return rows
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.corrupt_lines += 1
                continue
            if (
                not isinstance(record, dict)
                or record.get("v") != JOURNAL_FORMAT_VERSION
                or not isinstance(record.get("key"), str)
                or not isinstance(record.get("row"), dict)
            ):
                self.corrupt_lines += 1
                continue
            rows[record["key"]] = record["row"]
            meta = record.get("meta")
            if isinstance(meta, dict):
                self.meta[record["key"]] = meta
                salt = meta.get("salt")
                if isinstance(salt, str) and salt:
                    self.salts.add(salt)
        self._seen.update(rows)
        return rows

    # ------------------------------------------------------------------
    def append(self, key: str, row: dict, *, meta: dict | None = None) -> bool:
        """Durably record one completed cell; False if already journaled.

        A failed append (disk full, permissions) must never kill the
        sweep — the cell's result is still returned to the caller, it
        just won't be resumable.
        """
        if key in self._seen:
            self.skipped_duplicates += 1
            return False
        record = {
            "v": JOURNAL_FORMAT_VERSION,
            "key": key,
            "meta": meta or {},
            "row": row,
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            try:
                os.write(fd, line.encode("utf-8"))
                if self.fsync:
                    os.fsync(fd)
            finally:
                os.close(fd)
        except OSError:
            return False
        self._seen.add(key)
        self.appended += 1
        if meta:
            self.meta[key] = dict(meta)
            salt = meta.get("salt")
            if isinstance(salt, str) and salt:
                self.salts.add(salt)
        return True

    # ------------------------------------------------------------------
    def compact(self, *, keep_salts: set[str] | None = None) -> int:
        """Atomically rewrite the journal keeping only valid records.

        Returns the number of lines dropped (corrupt tails, duplicate
        keys).  The rewrite lands via ``os.replace`` so a crash during
        compaction leaves either the old or the new segment, never a
        torn one.

        ``keep_salts`` additionally prunes records stamped with a code
        salt outside the given set — records a resume under the current
        sources could never match (the ``StaleJournalError`` remedy).
        Unstamped records (pre-salt journals) are always kept.
        """
        rows = self.load()
        if not self.path.exists():
            return 0
        if keep_salts is not None:
            rows = {
                key: row
                for key, row in rows.items()
                if self.meta.get(key, {}).get("salt") in keep_salts
                or not self.meta.get(key, {}).get("salt")
            }
        raw_lines = [
            ln
            for ln in self.path.read_text(encoding="utf-8").splitlines()
            if ln.strip()
        ]
        dropped = len(raw_lines) - len(rows)
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent, prefix=".journal-", suffix=".jsonl"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for key, row in rows.items():
                    fh.write(
                        json.dumps(
                            {"v": JOURNAL_FORMAT_VERSION, "key": key,
                             "meta": self.meta.get(key, {}), "row": row},
                            sort_keys=True,
                        )
                        + "\n"
                    )
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass  # best-effort cleanup of the temp segment
            return 0
        self.corrupt_lines = 0
        # Rebuild the in-memory indexes to mirror the rewritten file, so
        # a pruned key can be re-appended in this same process.
        self._seen = set(rows)
        self.meta = {k: v for k, v in self.meta.items() if k in rows}
        self.salts = {
            s
            for m in self.meta.values()
            if isinstance(s := m.get("salt"), str) and s
        }
        return max(0, dropped)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One maintenance snapshot for ``tetris-write journal stats``.

        Calls :meth:`load` so the numbers reflect the on-disk file, not
        just what this process appended.
        """
        rows = self.load()
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        raw_lines = 0
        try:
            raw_lines = sum(
                1
                for ln in self.path.read_text(encoding="utf-8").splitlines()
                if ln.strip()
            )
        except OSError:
            pass
        return {
            "path": str(self.path),
            "records": len(rows),
            "lines": raw_lines,
            "corrupt_lines": self.corrupt_lines,
            "duplicate_lines": max(
                0, raw_lines - self.corrupt_lines - len(rows)
            ),
            "bytes": size,
            "salts": sorted(self.salts),
        }

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, key: str) -> bool:
        return key in self._seen
