"""Sweep checkpointing: an append-only, crash-tolerant completion log.

A killed sweep used to restart from zero (or from whatever the result
cache happened to hold).  :class:`SweepJournal` records every completed
cell as one JSONL line — ``{"v", "key", "meta", "row"}`` — beside the
:class:`~repro.parallel.resultcache.ResultCache`, so
``SweepEngine.run(..., resume=True)`` can skip finished work after a
crash and reproduce the uninterrupted run byte-for-byte.

Durability discipline:

* **Append + fsync** — each record is appended and fsync'd before the
  cell is considered journaled, so a crash can lose at most the line
  being written (never a previously acknowledged one).
* **Truncation tolerance** — :meth:`load` parses line by line; a torn
  or corrupt line (the expected crash artifact) is counted in
  :attr:`corrupt_lines` and skipped, never raised.
* **Atomic compaction** — :meth:`compact` rewrites only the valid
  records through a temp file + ``os.replace`` (one atomic segment
  swap), dropping torn tails and duplicate keys.

Keys are content addresses: :func:`journal_cell_key` hashes the cell's
canonical config JSON, trace key, scheme, and the code-version salt, so
a journal written by different sources (or a different grid) can never
leak a stale row into a resumed sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "SweepJournal",
    "journal_cell_key",
]

JOURNAL_FORMAT_VERSION = 1


def journal_cell_key(
    *, config_json: str, trace_key: str, scheme: str, salt: str
) -> str:
    """Content address of one journaled cell (code-salted like the cache)."""
    h = hashlib.sha256()
    for part in (
        f"journal:{JOURNAL_FORMAT_VERSION}", salt, scheme, trace_key, config_json
    ):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


class SweepJournal:
    """One on-disk completion log rooted at ``path``.

    ``fsync=False`` trades the per-record fsync for speed (tests,
    throwaway sweeps); production resume paths should keep the default.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.corrupt_lines = 0
        self.appended = 0
        self.skipped_duplicates = 0
        self._seen: set[str] = set()

    # ------------------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """Return ``{key: row}`` for every valid journaled record.

        Corrupt or truncated lines — the normal residue of a crash mid
        append — are skipped and counted in :attr:`corrupt_lines`.
        Later records win on duplicate keys (a re-run re-journaling a
        cell simply confirms it).
        """
        rows: dict[str, dict] = {}
        self.corrupt_lines = 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return rows
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.corrupt_lines += 1
                continue
            if (
                not isinstance(record, dict)
                or record.get("v") != JOURNAL_FORMAT_VERSION
                or not isinstance(record.get("key"), str)
                or not isinstance(record.get("row"), dict)
            ):
                self.corrupt_lines += 1
                continue
            rows[record["key"]] = record["row"]
        self._seen.update(rows)
        return rows

    # ------------------------------------------------------------------
    def append(self, key: str, row: dict, *, meta: dict | None = None) -> bool:
        """Durably record one completed cell; False if already journaled.

        A failed append (disk full, permissions) must never kill the
        sweep — the cell's result is still returned to the caller, it
        just won't be resumable.
        """
        if key in self._seen:
            self.skipped_duplicates += 1
            return False
        record = {
            "v": JOURNAL_FORMAT_VERSION,
            "key": key,
            "meta": meta or {},
            "row": row,
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            try:
                os.write(fd, line.encode("utf-8"))
                if self.fsync:
                    os.fsync(fd)
            finally:
                os.close(fd)
        except OSError:
            return False
        self._seen.add(key)
        self.appended += 1
        return True

    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Atomically rewrite the journal keeping only valid records.

        Returns the number of lines dropped (corrupt tails, duplicate
        keys).  The rewrite lands via ``os.replace`` so a crash during
        compaction leaves either the old or the new segment, never a
        torn one.
        """
        rows = self.load()
        if not self.path.exists():
            return 0
        raw_lines = [
            ln
            for ln in self.path.read_text(encoding="utf-8").splitlines()
            if ln.strip()
        ]
        dropped = len(raw_lines) - len(rows)
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent, prefix=".journal-", suffix=".jsonl"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for key, row in rows.items():
                    fh.write(
                        json.dumps(
                            {"v": JOURNAL_FORMAT_VERSION, "key": key,
                             "meta": {}, "row": row},
                            sort_keys=True,
                        )
                        + "\n"
                    )
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass  # best-effort cleanup of the temp segment
            return 0
        self.corrupt_lines = 0
        return max(0, dropped)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, key: str) -> bool:
        return key in self._seen
