"""Content-addressed on-disk cache for experiment-grid cells.

Every (scheme x workload x seed x config) cell of a sweep is a pure
function of its inputs, so its :class:`~repro.experiments.runner.
ExperimentResult` can be cached on disk and replayed on the next
invocation without touching the DES.  The key design points:

* **Content addressing** — a cell's key is the SHA-256 of the
  canonicalized :class:`~repro.config.SystemConfig` JSON, the trace key
  (either a content fingerprint for user-supplied traces or the full
  synthetic-generation coordinates), the scheme name, and a code-version
  salt.  Anything that can change the simulated result changes the key.
* **Code-version salt** — the salt hashes every ``*.py`` file of the
  installed ``repro`` package, so editing any simulator source
  invalidates the whole store automatically; no manual version bumps,
  no stale results after a refactor.
* **Atomic writes** — entries are written to a temp file in the cache
  directory and ``os.replace``d into place, so concurrent sweep
  processes sharing one store can never observe a torn entry.
* **Opt-outs** — ``REPRO_NO_CACHE`` (any non-empty value) disables the
  cache globally; ``REPRO_CACHE_DIR`` moves the store; callers can pass
  an explicit directory or ``cache=False``.
* **Integrity** — every entry embeds a SHA-256 digest of its row
  payload; :meth:`ResultCache.get` re-hashes on read and a mismatched
  or unparseable entry is *quarantined* (moved to ``<root>/quarantine/``
  for inspection, counted in :attr:`CacheStats.corrupt`) instead of
  silently re-missing forever.  :meth:`ResultCache.verify` audits the
  whole store; :meth:`ResultCache.gc` drops stale-salt and quarantined
  entries (``tetris-write cache verify`` / ``gc``).

Corrupt or unreadable entries are treated as misses, never raised.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "ResultCache",
    "cache_disabled_by_env",
    "code_salt",
    "default_cache_dir",
    "row_digest",
]

# Bump when the entry layout (not the simulated semantics — the code
# salt covers those) changes incompatibly.  v2 added the mandatory
# per-entry payload digest.
CACHE_FORMAT_VERSION = 3

QUARANTINE_DIR = "quarantine"


def row_digest(row: dict) -> str:
    """Canonical SHA-256 of one row payload (the per-entry checksum)."""
    return hashlib.sha256(
        json.dumps(row, sort_keys=True).encode("utf-8")
    ).hexdigest()


def cache_disabled_by_env() -> bool:
    """True when ``REPRO_NO_CACHE`` is set to a non-empty value."""
    return bool(os.environ.get("REPRO_NO_CACHE", ""))


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/tetris-write/results``."""
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "tetris-write" / "results"


@lru_cache(maxsize=1)
def code_salt() -> str:
    """Digest of the ``repro`` package sources (the code-version salt).

    Hashing path-sorted (relative path, file bytes) pairs makes the salt
    stable across machines for identical sources and different for any
    source change — including to this module, which conservatively
    invalidates the store when the cache itself evolves.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(path.relative_to(root).as_posix().encode())
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache handle's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0    # entries quarantined on read (digest/format bad)

    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate(),
        }


@dataclass
class ResultCache:
    """One on-disk result store rooted at ``root``.

    The store is a two-level directory of JSON entries
    (``<key[:2]>/<key>.json``) so no single directory grows unbounded.
    """

    root: Path
    salt: str = ""
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if not self.salt:
            self.salt = code_salt()

    # ------------------------------------------------------------------
    # Keying.
    # ------------------------------------------------------------------
    def cell_key(
        self,
        *,
        config_json: str,
        trace_key: str,
        scheme: str,
        lane: str = "des",
    ) -> str:
        """Content address of one grid cell.

        ``config_json`` must be the canonical (sorted-keys) serialization
        of the cell's :class:`SystemConfig` so field ordering can never
        split the key space.  ``lane`` separates analytic-fastpath rows
        from DES rows: the two lanes agree only within tolerance bands,
        so a row from one must never satisfy a lookup from the other.
        """
        h = hashlib.sha256()
        for part in (str(CACHE_FORMAT_VERSION), self.salt, scheme, trace_key,
                     lane, config_json):
            h.update(part.encode())
            h.update(b"\x00")
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store.
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """Return the cached row dict for ``key``, or None on a miss.

        An entry that exists but fails validation — unparseable JSON,
        wrong format version, or a payload that no longer matches its
        embedded digest (torn write, bit rot, manual edit) — is
        quarantined rather than left in place: silently re-missing on
        every lookup hides the corruption forever, while quarantining
        surfaces it in ``tetris-write cache verify`` and lets the next
        store land clean.
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except ValueError:
            self.stats.misses += 1
            self.stats.corrupt += 1
            self._quarantine(path)
            return None
        except OSError:
            self.stats.misses += 1
            return None
        if not self._entry_valid(entry):
            self.stats.misses += 1
            self.stats.corrupt += 1
            self._quarantine(path)
            return None
        self.stats.hits += 1
        return entry["row"]

    @staticmethod
    def _entry_valid(entry) -> bool:
        """Structural + integrity validation of one parsed entry."""
        return (
            isinstance(entry, dict)
            and entry.get("version") == CACHE_FORMAT_VERSION
            and isinstance(entry.get("row"), dict)
            and entry.get("sha256") == row_digest(entry["row"])
        )

    def _quarantine(self, path: Path) -> bool:
        """Move a bad entry into ``<root>/quarantine/`` (best effort)."""
        qdir = self.root / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            return False
        return True

    def put(self, key: str, row: dict, *, meta: dict | None = None) -> None:
        """Atomically persist one cell's row (tmp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "meta": meta or {},
            "row": row,
            "sha256": row_digest(row),
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            # A failed store (disk full, permissions) must never kill the
            # sweep — the cell result is still returned to the caller.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.stats.stores += 1

    # ------------------------------------------------------------------
    # Maintenance / reporting.
    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def quarantined(self) -> list[Path]:
        """Entries previously moved aside by integrity checks."""
        qdir = self.root / QUARANTINE_DIR
        if not qdir.is_dir():
            return []
        return sorted(p for p in qdir.iterdir() if p.is_file())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def verify(self) -> dict:
        """Audit every entry: re-parse, re-hash, quarantine what fails.

        Returns a summary dict — ``checked`` entries scanned, ``ok``
        passing structural + digest validation, ``corrupt`` moved to
        quarantine this pass, ``stale_salt`` valid entries written by a
        different code version (unreachable under the current salt;
        reclaim with :meth:`gc`), and the total ``quarantined`` count.
        """
        checked = ok = corrupt = stale = 0
        for path in self.entries():
            checked += 1
            try:
                with open(path, encoding="utf-8") as fh:
                    entry = json.load(fh)
            except (OSError, ValueError):
                corrupt += self._quarantine(path)
                continue
            if not self._entry_valid(entry):
                corrupt += self._quarantine(path)
                continue
            ok += 1
            if entry.get("meta", {}).get("salt", "") != self.salt:
                stale += 1
        return {
            "root": str(self.root),
            "checked": checked,
            "ok": ok,
            "corrupt": corrupt,
            "stale_salt": stale,
            "quarantined": len(self.quarantined()),
        }

    def gc(self) -> dict:
        """Reclaim dead weight: stale-salt entries and quarantined files.

        Stale-salt entries were written by a different code version;
        their keys can never be looked up under the current salt, so
        they only cost disk.  Corrupt entries already moved aside by
        :meth:`get`/:meth:`verify` are deleted for good.
        """
        removed_stale = 0
        for path in self.entries():
            try:
                with open(path, encoding="utf-8") as fh:
                    entry = json.load(fh)
            except (OSError, ValueError):
                continue  # verify()'s job, not gc's
            if (
                isinstance(entry, dict)
                and entry.get("meta", {}).get("salt", "") != self.salt
            ):
                try:
                    path.unlink()
                    removed_stale += 1
                except OSError:
                    continue
        removed_quarantined = 0
        for path in self.quarantined():
            try:
                path.unlink()
                removed_quarantined += 1
            except OSError:
                continue
        return {
            "root": str(self.root),
            "removed_stale": removed_stale,
            "removed_quarantined": removed_quarantined,
        }

    def report(self) -> dict:
        """Store-wide summary for ``tetris-write sweep --stats``."""
        entries = self.entries()
        total_bytes = 0
        by_scheme: dict[str, int] = {}
        by_lane: dict[str, int] = {}
        current_salt = 0
        for path in entries:
            try:
                total_bytes += path.stat().st_size
                with open(path, encoding="utf-8") as fh:
                    entry = json.load(fh)
            except (OSError, ValueError):
                continue
            meta = entry.get("meta", {})
            scheme = meta.get("scheme", "?")
            by_scheme[scheme] = by_scheme.get(scheme, 0) + 1
            # Pre-lane entries (format v2) carried no lane tag; they can
            # only have been DES rows.
            lane = meta.get("lane", "des")
            by_lane[lane] = by_lane.get(lane, 0) + 1
            if meta.get("salt", "") == self.salt:
                current_salt += 1
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": total_bytes,
            "by_scheme": dict(sorted(by_scheme.items())),
            "by_lane": dict(sorted(by_lane.items())),
            "current_code_version": current_salt,
            "quarantined": len(self.quarantined()),
        }
