"""Content-addressed on-disk cache for experiment-grid cells.

Every (scheme x workload x seed x config) cell of a sweep is a pure
function of its inputs, so its :class:`~repro.experiments.runner.
ExperimentResult` can be cached on disk and replayed on the next
invocation without touching the DES.  The key design points:

* **Content addressing** — a cell's key is the SHA-256 of the
  canonicalized :class:`~repro.config.SystemConfig` JSON, the trace key
  (either a content fingerprint for user-supplied traces or the full
  synthetic-generation coordinates), the scheme name, and a code-version
  salt.  Anything that can change the simulated result changes the key.
* **Code-version salt** — the salt hashes every ``*.py`` file of the
  installed ``repro`` package, so editing any simulator source
  invalidates the whole store automatically; no manual version bumps,
  no stale results after a refactor.
* **Atomic writes** — entries are written to a temp file in the cache
  directory and ``os.replace``d into place, so concurrent sweep
  processes sharing one store can never observe a torn entry.
* **Opt-outs** — ``REPRO_NO_CACHE`` (any non-empty value) disables the
  cache globally; ``REPRO_CACHE_DIR`` moves the store; callers can pass
  an explicit directory or ``cache=False``.

Corrupt or unreadable entries are treated as misses and overwritten,
never raised.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "ResultCache",
    "cache_disabled_by_env",
    "code_salt",
    "default_cache_dir",
]

# Bump when the entry layout (not the simulated semantics — the code
# salt covers those) changes incompatibly.
CACHE_FORMAT_VERSION = 1


def cache_disabled_by_env() -> bool:
    """True when ``REPRO_NO_CACHE`` is set to a non-empty value."""
    return bool(os.environ.get("REPRO_NO_CACHE", ""))


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/tetris-write/results``."""
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "tetris-write" / "results"


@lru_cache(maxsize=1)
def code_salt() -> str:
    """Digest of the ``repro`` package sources (the code-version salt).

    Hashing path-sorted (relative path, file bytes) pairs makes the salt
    stable across machines for identical sources and different for any
    source change — including to this module, which conservatively
    invalidates the store when the cache itself evolves.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(path.relative_to(root).as_posix().encode())
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache handle's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hit_rate(),
        }


@dataclass
class ResultCache:
    """One on-disk result store rooted at ``root``.

    The store is a two-level directory of JSON entries
    (``<key[:2]>/<key>.json``) so no single directory grows unbounded.
    """

    root: Path
    salt: str = ""
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if not self.salt:
            self.salt = code_salt()

    # ------------------------------------------------------------------
    # Keying.
    # ------------------------------------------------------------------
    def cell_key(self, *, config_json: str, trace_key: str, scheme: str) -> str:
        """Content address of one grid cell.

        ``config_json`` must be the canonical (sorted-keys) serialization
        of the cell's :class:`SystemConfig` so field ordering can never
        split the key space.
        """
        h = hashlib.sha256()
        for part in (str(CACHE_FORMAT_VERSION), self.salt, scheme, trace_key,
                     config_json):
            h.update(part.encode())
            h.update(b"\x00")
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store.
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """Return the cached row dict for ``key``, or None on a miss.

        Unreadable and format-mismatched entries count as misses.
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if entry.get("version") != CACHE_FORMAT_VERSION or "row" not in entry:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["row"]

    def put(self, key: str, row: dict, *, meta: dict | None = None) -> None:
        """Atomically persist one cell's row (tmp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "meta": meta or {},
            "row": row,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            # A failed store (disk full, permissions) must never kill the
            # sweep — the cell result is still returned to the caller.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.stats.stores += 1

    # ------------------------------------------------------------------
    # Maintenance / reporting.
    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def report(self) -> dict:
        """Store-wide summary for ``tetris-write sweep --stats``."""
        entries = self.entries()
        total_bytes = 0
        by_scheme: dict[str, int] = {}
        current_salt = 0
        for path in entries:
            try:
                total_bytes += path.stat().st_size
                with open(path, encoding="utf-8") as fh:
                    entry = json.load(fh)
            except (OSError, ValueError):
                continue
            scheme = entry.get("meta", {}).get("scheme", "?")
            by_scheme[scheme] = by_scheme.get(scheme, 0) + 1
            if entry.get("meta", {}).get("salt", "") == self.salt:
                current_salt += 1
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": total_bytes,
            "by_scheme": dict(sorted(by_scheme.items())),
            "current_code_version": current_salt,
        }
