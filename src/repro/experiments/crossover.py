"""Crossover analysis: where does write scheduling stop mattering?

The paper's gains live in the write-bound regime.  This experiment
sweeps memory intensity — scaling a workload's instruction gaps so the
same requests arrive faster or slower — and charts each scheme's runtime
ratio against the DCW baseline.  At low intensity every scheme converges
to 1.0 (cores never wait for memory); as intensity grows the curves
separate in the paper's order.  The interesting outputs are the
*knee* (intensity where Tetris first wins ≥ 5 %) and the saturated gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.config import SystemConfig, default_config
from repro.experiments.fullsystem import run_fullsystem
from repro.parallel.engine import parallel_map
from repro.trace.record import Trace
from repro.trace.synthetic import generate_trace

__all__ = ["CrossoverPoint", "scale_intensity", "sweep_intensity"]


@dataclass(frozen=True)
class CrossoverPoint:
    """One intensity sample: scale factor -> normalized runtimes."""

    intensity: float
    runtime_ratio: dict[str, float]  # scheme -> runtime / DCW runtime
    read_latency_ratio: dict[str, float]


def scale_intensity(trace: Trace, factor: float) -> Trace:
    """Scale a trace's memory intensity by ``factor``.

    Dividing every instruction gap by the factor makes the same requests
    arrive ``factor``x faster (RPKI/WPKI scale up accordingly); gaps are
    floored at one instruction.
    """
    if factor <= 0:
        raise ValueError("intensity factor must be positive")
    records = trace.records.copy()
    records["gap"] = np.maximum(
        (records["gap"].astype(np.float64) / factor).astype(np.uint32), 1
    )
    return Trace(
        workload=f"{trace.workload}@x{factor:g}",
        seed=trace.seed,
        records=records,
        write_counts=trace.write_counts,
        units_per_line=trace.units_per_line,
        meta={**trace.meta, "intensity": factor},
    )


def _intensity_point(
    base_trace: Trace,
    schemes: tuple[str, ...],
    cfg: SystemConfig,
    factor: float,
) -> CrossoverPoint:
    """One intensity sample (top-level so ``parallel_map`` can pickle it)."""
    trace = scale_intensity(base_trace, factor)
    dcw = run_fullsystem(trace, "dcw", cfg)
    runtime_ratio = {}
    read_ratio = {}
    for scheme in schemes:
        res = run_fullsystem(trace, scheme, cfg)
        runtime_ratio[scheme] = res.runtime_ns / dcw.runtime_ns
        read_ratio[scheme] = (
            res.mean_read_latency_ns / dcw.mean_read_latency_ns
            if dcw.mean_read_latency_ns
            else 1.0
        )
    return CrossoverPoint(
        intensity=factor,
        runtime_ratio=runtime_ratio,
        read_latency_ratio=read_ratio,
    )


def sweep_intensity(
    workload: str = "dedup",
    factors: tuple[float, ...] = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0),
    schemes: tuple[str, ...] = ("flip_n_write", "three_stage", "tetris"),
    *,
    requests_per_core: int = 1500,
    seed: int = 20160816,
    config: SystemConfig | None = None,
    workers: int = 1,
) -> list[CrossoverPoint]:
    """Run the intensity sweep; factor 1.0 is the workload's Table III rate.

    Each factor is an independent DES grid, so ``workers`` fans the
    points over a process pool with identical (ordered) output.
    """
    cfg = config if config is not None else default_config()
    base_trace = generate_trace(workload, requests_per_core, seed=seed)
    return parallel_map(
        partial(_intensity_point, base_trace, tuple(schemes), cfg),
        factors,
        workers=workers,
    )


def find_knee(
    points: list[CrossoverPoint], scheme: str = "tetris", threshold: float = 0.95
) -> float | None:
    """Lowest intensity where the scheme's runtime ratio drops below the
    threshold (None if it never does)."""
    for p in sorted(points, key=lambda p: p.intensity):
        if p.runtime_ratio.get(scheme, 1.0) < threshold:
            return p.intensity
    return None
