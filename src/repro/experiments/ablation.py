"""Ablation sweeps over the design parameters DESIGN.md calls out.

Each sweep answers one "what actually buys the win?" question:

* **power budget** — Tetris's advantage comes from packing under the
  budget; shrinking it (the mobile scenario of §I) shows where Tetris
  degrades toward Three-Stage-Write.
* **K (time asymmetry)** — smaller K means write-0s hide less easily.
* **L (power asymmetry)** — larger L makes write-0s more expensive to
  place in interspaces.
* **write-unit width** — X16 -> X8 -> X4 -> X2 division modes.
* **scheduler variants** — flip disabled (how much of the win is
  Flip-N-Write's?), exclusive unit slots (shared select line), chip-level
  scheduling without GCP.

Every list sweep accepts ``workers``: points are independent, so they
fan out over :func:`repro.parallel.parallel_map` (ordered, fail-fast);
``workers=1`` is a plain loop with identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.config import SystemConfig, default_config
from repro.core.batch import pack_batch
from repro.parallel.engine import parallel_map
from repro.trace.record import Trace

__all__ = [
    "AblationPoint",
    "sweep_power_budget",
    "sweep_time_asymmetry",
    "sweep_power_asymmetry",
    "sweep_write_unit_width",
    "sweep_no_flip",
]


@dataclass(frozen=True)
class AblationPoint:
    """One sweep sample: parameter value -> mean Tetris write units."""

    parameter: str
    value: float
    mean_units: float
    mean_result: float
    mean_subresult: float


def _mean_units(
    trace: Trace, *, K: int, L: float, budget: float, allow_split: bool = False
) -> tuple[float, float, float]:
    packed = pack_batch(
        trace.write_counts[..., 0].astype(int),
        trace.write_counts[..., 1].astype(int),
        K=K,
        L=L,
        power_budget=budget,
        allow_split=allow_split,
    )
    units = packed.service_units()
    return (
        float(units.mean()),
        float(packed.result.mean()),
        float(packed.subresult.mean()),
    )


# Per-point workers for parallel_map: top-level (picklable) functions
# taking the swept value last so sweeps can ``partial`` the fixed args.
def _budget_point(trace: Trace, K: int, L: float, budget: float) -> AblationPoint:
    u, r, s = _mean_units(trace, K=K, L=L, budget=budget, allow_split=True)
    return AblationPoint("power_budget", budget, u, r, s)


def _K_point(trace: Trace, L: float, budget: float, K: int) -> AblationPoint:
    u, r, s = _mean_units(trace, K=K, L=L, budget=budget)
    return AblationPoint("K", float(K), u, r, s)


def _L_point(trace: Trace, K: int, budget: float, L: float) -> AblationPoint:
    u, r, s = _mean_units(trace, K=K, L=L, budget=budget)
    return AblationPoint("L", L, u, r, s)


def _width_point(trace: Trace, width: int) -> AblationPoint:
    budget = 128.0 * width / 16.0
    u, r, s = _mean_units(trace, K=8, L=2.0, budget=budget, allow_split=True)
    return AblationPoint("write_unit_bits", float(width), u, r, s)


def sweep_power_budget(
    trace: Trace,
    budgets: tuple[float, ...] = (32.0, 48.0, 64.0, 96.0, 128.0, 192.0, 256.0),
    *,
    config: SystemConfig | None = None,
    workers: int = 1,
) -> list[AblationPoint]:
    """Tetris units vs. available instantaneous current per bank."""
    cfg = config if config is not None else default_config()
    return parallel_map(
        partial(_budget_point, trace, cfg.K, cfg.L), budgets, workers=workers
    )


def sweep_time_asymmetry(
    trace: Trace,
    Ks: tuple[int, ...] = (1, 2, 4, 8, 16),
    *,
    config: SystemConfig | None = None,
    workers: int = 1,
) -> list[AblationPoint]:
    """Tetris units vs. the Tset/Treset ratio."""
    cfg = config if config is not None else default_config()
    return parallel_map(
        partial(_K_point, trace, cfg.L, cfg.bank_power_budget), Ks, workers=workers
    )


def sweep_power_asymmetry(
    trace: Trace,
    Ls: tuple[float, ...] = (1.0, 1.5, 2.0, 3.0, 4.0),
    *,
    config: SystemConfig | None = None,
    workers: int = 1,
) -> list[AblationPoint]:
    """Tetris units vs. the Creset/Cset ratio."""
    cfg = config if config is not None else default_config()
    return parallel_map(
        partial(_L_point, trace, cfg.K, cfg.bank_power_budget), Ls, workers=workers
    )


def sweep_write_unit_width(
    trace: Trace,
    widths: tuple[int, ...] = (2, 4, 8, 16),
    *,
    workers: int = 1,
) -> list[AblationPoint]:
    """The mobile division modes of §I: budget scales with the width.

    A 16-bit write unit corresponds to the desktop budget of 32 SET units
    per chip (128 per bank); narrower units scale the bank budget down
    proportionally.
    """
    return parallel_map(partial(_width_point, trace), widths, workers=workers)


def sweep_no_flip(
    trace: Trace, *, config: SystemConfig | None = None
) -> list[AblationPoint]:
    """How much of Tetris's win is the flip bound vs. the scheduling?

    Without flip, a unit may need up to all 64 cells programmed.  We
    model the no-flip profile by re-drawing counts with the flip bound
    removed: the *same* mean change profile, but the heavy tail the flip
    stage would have cut is kept (counts mirrored above N/2 are what flip
    prevents).  Statistically this doubles the occasional heavy unit, so
    the comparison isolates the packing contribution.
    """
    cfg = config if config is not None else default_config()
    n_set = trace.write_counts[..., 0].astype(int)
    n_reset = trace.write_counts[..., 1].astype(int)

    u, r, s = _mean_units(trace, K=cfg.K, L=cfg.L, budget=cfg.bank_power_budget)
    flip_pt = AblationPoint("flip", 1.0, u, r, s)

    # No-flip: mirror the clipped mass — units that would have flipped
    # (change > 32 cells) appear with their unclipped weight.  We scale
    # the heaviest decile of units up to the unflipped worst case.
    rng = np.random.default_rng(trace.seed)
    heavy = rng.random(n_set.shape) < 0.1
    n_set_nf = np.where(heavy, np.minimum(n_set * 3, 50), n_set)
    n_reset_nf = np.where(heavy, np.minimum(n_reset * 3, 50), n_reset)
    packed = pack_batch(
        n_set_nf, n_reset_nf, K=cfg.K, L=cfg.L, power_budget=cfg.bank_power_budget
    )
    units = packed.service_units()
    noflip_pt = AblationPoint(
        "flip",
        0.0,
        float(units.mean()),
        float(packed.result.mean()),
        float(packed.subresult.mean()),
    )
    return [flip_pt, noflip_pt]
