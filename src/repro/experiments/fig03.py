"""Figure 3: the number of RESET and SET operations per 64-bit data unit.

The paper measures, per workload, the average bit-writes a data unit
needs after Flip-N-Write-style inversion — the observation motivating
Tetris Write (9.6 per 64 bits on average: 6.7 SET + 2.9 RESET, with
ferret/vips near fifty-fifty and blackscholes/vips at the extremes).

This harness regenerates the figure from our synthetic workloads, pushing
every write's realized payload through the *actual read stage* (not the
generator's target counts) so the measurement path mirrors the paper's.
A fast mode trusts the trace counts directly (valid because the content
model's counts are post-inversion by construction; the slow path is the
cross-check).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.read_stage import read_stage
from repro.pcm.state import MemoryImage
from repro.trace.content import realize_payload
from repro.trace.record import Trace
from repro.trace.synthetic import generate_trace
from repro.trace.workloads import WORKLOAD_NAMES

__all__ = ["BitProfileRow", "measure_bit_profile", "run_fig03"]


@dataclass(frozen=True)
class BitProfileRow:
    """One workload's Figure-3 bar pair."""

    workload: str
    mean_set: float
    mean_reset: float

    @property
    def total(self) -> float:
        return self.mean_set + self.mean_reset


def measure_bit_profile(
    trace: Trace, *, functional: bool = False, max_writes: int | None = None
) -> BitProfileRow:
    """Average per-unit (SET, RESET) across the trace's writes.

    ``functional=True`` realizes every payload against an evolving memory
    image and measures through :func:`~repro.core.read_stage.read_stage`
    — the paper's measurement path; the default trusts the trace counts.
    """
    if not functional:
        mean_set, mean_reset = trace.mean_bit_profile()
        return BitProfileRow(trace.workload, mean_set, mean_reset)

    image = MemoryImage(seed=trace.seed, units_per_line=trace.units_per_line)
    write_lines = trace.records["line"][trace.records["op"] == 1]
    n = trace.n_writes if max_writes is None else min(max_writes, trace.n_writes)
    tot_set = 0
    tot_reset = 0
    units = 0
    for w in range(n):
        line = int(write_lines[w])
        state = image.line(line)
        rng = np.random.default_rng(np.random.SeedSequence([trace.seed, w]))
        new_logical = realize_payload(rng, state.logical, trace.write_counts[w])
        rs = read_stage(state.physical, state.flip, new_logical)
        state.store(rs.physical, rs.flip)
        tot_set += int(rs.n_set.sum())
        tot_reset += int(rs.n_reset.sum())
        units += trace.units_per_line
    if units == 0:
        return BitProfileRow(trace.workload, 0.0, 0.0)
    return BitProfileRow(trace.workload, tot_set / units, tot_reset / units)


def run_fig03(
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    *,
    requests_per_core: int = 2000,
    seed: int = 20160816,
    functional: bool = False,
) -> list[BitProfileRow]:
    """Regenerate Figure 3's series for the given workloads."""
    rows = []
    for name in workloads:
        trace = generate_trace(name, requests_per_core, seed=seed)
        rows.append(measure_bit_profile(trace, functional=functional))
    return rows
