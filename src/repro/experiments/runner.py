"""Experiment orchestration: schemes x workloads sweeps with caching.

The Fig 11-14 benches all need the same grid of full-system runs, so the
runner generates each workload's trace once, prices it under every
scheme, runs the DES, and hands back a tidy list of
:class:`ExperimentResult` rows that the report layer turns into the
paper's normalized figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, default_config
from repro.experiments.fullsystem import precompute_write_service, run_fullsystem
from repro.trace.record import Trace
from repro.trace.synthetic import generate_trace
from repro.trace.workloads import WORKLOAD_NAMES

__all__ = ["ExperimentResult", "run_schemes_on_workloads", "BASELINE_SCHEME"]

BASELINE_SCHEME = "dcw"


@dataclass(frozen=True)
class ExperimentResult:
    """One (workload, scheme) cell of the evaluation grid."""

    workload: str
    scheme: str
    read_latency_ns: float
    write_latency_ns: float
    ipc: float
    runtime_ns: float
    mean_write_units: float
    mean_write_energy: float
    forwarded_reads: int
    events: int

    def normalized(self, base: "ExperimentResult") -> dict[str, float]:
        """The paper's normalizations against the DCW baseline."""
        return {
            "read_latency": self.read_latency_ns / base.read_latency_ns
            if base.read_latency_ns
            else 0.0,
            "write_latency": self.write_latency_ns / base.write_latency_ns
            if base.write_latency_ns
            else 0.0,
            "ipc_improvement": self.ipc / base.ipc if base.ipc else 0.0,
            "running_time": self.runtime_ns / base.runtime_ns
            if base.runtime_ns
            else 0.0,
        }


def run_schemes_on_workloads(
    schemes: tuple[str, ...],
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    *,
    config: SystemConfig | None = None,
    requests_per_core: int = 4000,
    seed: int = 20160816,
    traces: dict[str, Trace] | None = None,
) -> list[ExperimentResult]:
    """Run the full grid; returns one row per (workload, scheme)."""
    config = config if config is not None else default_config()
    results: list[ExperimentResult] = []
    for workload in workloads:
        trace = (
            traces[workload]
            if traces is not None and workload in traces
            else generate_trace(
                workload, requests_per_core, num_cores=config.cpu.num_cores, seed=seed
            )
        )
        for scheme in schemes:
            table = precompute_write_service(trace, scheme, config)
            res = run_fullsystem(trace, scheme, config, table=table)
            results.append(
                ExperimentResult(
                    workload=workload,
                    scheme=scheme,
                    read_latency_ns=res.mean_read_latency_ns,
                    write_latency_ns=res.mean_write_latency_ns,
                    ipc=res.ipc,
                    runtime_ns=res.runtime_ns,
                    mean_write_units=table.mean_units(),
                    mean_write_energy=float(table.energy.mean())
                    if table.energy.size
                    else 0.0,
                    forwarded_reads=res.controller.forwarded_reads,
                    events=res.events,
                )
            )
    return results


def results_by(
    results: list[ExperimentResult],
) -> dict[tuple[str, str], ExperimentResult]:
    """Index results by (workload, scheme)."""
    return {(r.workload, r.scheme): r for r in results}
