"""Experiment orchestration: schemes x workloads sweeps with caching.

The Fig 11-14 benches all need the same grid of full-system runs.  The
runner delegates that grid to :class:`repro.parallel.SweepEngine`, which
fans cells over a process pool (``workers``), replays previously
computed cells from the content-addressed on-disk result cache, and
reuses each workload's trace across schemes — then hands back a tidy
list of :class:`ExperimentResult` rows that the report layer turns into
the paper's normalized figures.  ``workers=1`` with a cold cache runs
the exact cell code serially, bit-identical to any parallel run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

from repro.config import SystemConfig
from repro.trace.record import Trace
from repro.trace.workloads import WORKLOAD_NAMES

__all__ = ["ExperimentResult", "run_schemes_on_workloads", "BASELINE_SCHEME"]

BASELINE_SCHEME = "dcw"


@dataclass(frozen=True)
class ExperimentResult:
    """One (workload, scheme) cell of the evaluation grid."""

    workload: str
    scheme: str
    read_latency_ns: float
    write_latency_ns: float
    ipc: float
    runtime_ns: float
    mean_write_units: float
    mean_write_energy: float
    forwarded_reads: int
    events: int

    def normalized(self, base: "ExperimentResult") -> dict[str, float]:
        """The paper's normalizations against the DCW baseline.

        A zero baseline metric has no meaningful ratio — returning 0.0
        would let a degenerate baseline masquerade as an infinite
        improvement, so those entries are NaN (rendered ``n/a`` by the
        report layer).
        """

        def ratio(mine: float, theirs: float) -> float:
            return mine / theirs if theirs else math.nan

        return {
            "read_latency": ratio(self.read_latency_ns, base.read_latency_ns),
            "write_latency": ratio(self.write_latency_ns, base.write_latency_ns),
            "ipc_improvement": ratio(self.ipc, base.ipc),
            "running_time": ratio(self.runtime_ns, base.runtime_ns),
        }


def run_schemes_on_workloads(
    schemes: tuple[str, ...],
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    *,
    config: SystemConfig | None = None,
    requests_per_core: int = 4000,
    seed: int = 20160816,
    traces: dict[str, Trace] | None = None,
    workers: int = 1,
    cache: object | None = None,
    cache_dir: str | Path | None = None,
    journal: str | Path | None = None,
    resume: bool = False,
) -> list[ExperimentResult]:
    """Run the full grid; returns one row per (workload, scheme).

    ``workers`` fans cells over a supervised process pool (output is
    bit-identical to serial); ``cache`` follows
    :class:`~repro.parallel.SweepEngine` semantics (``None`` = on unless
    ``REPRO_NO_CACHE``, ``False`` = off, or a
    :class:`~repro.parallel.ResultCache` instance).  ``journal`` points
    at a :class:`~repro.parallel.SweepJournal` checkpoint file and
    ``resume=True`` replays cells it already records
    (``docs/RESILIENCE.md``).  Cell failures raise, matching the
    historical serial-loop behavior.
    """
    from repro.parallel.engine import SweepEngine

    engine = SweepEngine(
        config=config,
        requests_per_core=requests_per_core,
        root_seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
        traces=traces,
        journal=journal,
    )
    sweep = engine.run(tuple(schemes), tuple(workloads), resume=resume)
    sweep.raise_errors()
    return sweep.rows


def results_by(
    results: list[ExperimentResult],
) -> dict[tuple[str, str], ExperimentResult]:
    """Index results by (workload, scheme)."""
    return {(r.workload, r.scheme): r for r in results}
