"""Fault-injection experiments: retry-latency sweeps and wear-out curves.

Two questions the robustness subsystem (``repro.faults``) must answer
quantitatively:

* **What does reliability cost?** :func:`run_fault_sweep` replays one
  workload's writes through each scheme at a range of transient bit-error
  rates and reports how the verify-and-retry loop stretches the service
  latency distribution (mean / P50 / P99) and energy.  At rate 0 the
  numbers must coincide with the fault-free simulator (the bench in
  ``benchmarks/bench_faults.py`` holds the overhead under 2%).
* **How does the array die?** :func:`retirement_curve` hammers a small
  set of lines with a tiny endurance budget and records the degradation
  cascade: cells sticking, ECP entries filling, lines retiring to
  spares, and finally the first :class:`UncorrectableWriteError`.

Both are deterministic for a fixed seed: payloads come from counter-based
``SeedSequence`` streams and the fault model draws all randomness from
``FaultConfig.seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import FaultConfig, SystemConfig, default_config
from repro.faults import UncorrectableWriteError
from repro.pcm.bank import PCMBank
from repro.schemes import get_scheme
from repro.sim.stats import FaultStats, Histogram, LatencyStat
from repro.trace.content import realize_payload
from repro.trace.record import Trace
from repro.trace.synthetic import generate_trace

__all__ = [
    "FaultSweepRow",
    "RetirementPoint",
    "replay_writes",
    "retirement_curve",
    "run_fault_sweep",
]

_U64 = np.uint64

DEFAULT_RATES = (0.0, 1e-4, 1e-3, 1e-2)
DEFAULT_SCHEMES = ("dcw", "tetris")

# Latency histogram resolution: 25 ns bins cover the retry-stretched tail
# of a ~50-1000 ns write service distribution with a 6.4 us overflow bin.
_BIN_NS = 25.0
_BINS = 256


@dataclass(frozen=True)
class FaultSweepRow:
    """One (scheme, transient rate) point of the fault sweep."""

    scheme: str
    rate: float
    writes: int
    mean_attempts: float
    retry_rate: float
    mean_service_ns: float
    p50_service_ns: float
    p99_service_ns: float
    mean_energy: float
    degraded_writes: int
    retirements: int
    uncorrectable: int


@dataclass(frozen=True)
class RetirementPoint:
    """Degradation snapshot after ``writes_issued`` hammer writes."""

    writes_issued: int
    stuck_cells: int
    ecp_lines: int
    retired_lines: int
    mean_attempts: float
    uncorrectable: int


def replay_writes(
    scheme_name: str,
    trace: Trace,
    config: SystemConfig,
) -> tuple[FaultStats, LatencyStat, Histogram, PCMBank]:
    """Replay every write of a trace through one bank and aggregate.

    Write payloads are realized against the live image with the same
    counter-based per-write streams the full-system model uses, so the
    content evolution is identical across schemes and fault rates.
    Uncorrectable writes are counted (in ``FaultStats.uncorrectable``)
    and the replay continues — the sweep charts degradation, it does not
    abort on the first lost line.
    """
    scheme = get_scheme(scheme_name, config)
    bank = PCMBank(0, scheme, config)
    stats = FaultStats()
    lat = LatencyStat(name=f"{scheme_name}_service_ns")
    hist = Histogram(f"{scheme_name}_service_ns", _BIN_NS, _BINS)
    for w, idx in enumerate(trace.write_indices):
        line = int(trace.records["line"][idx])
        old_logical = bank.image.read_logical(line)
        rng = np.random.default_rng(np.random.SeedSequence([trace.seed, w]))
        new_logical = realize_payload(
            rng, old_logical, trace.write_counts[w], config.data_unit_bits
        )
        try:
            outcome = bank.write(line, new_logical)
        except UncorrectableWriteError:
            stats.uncorrectable += 1
            continue
        stats.observe(outcome)
        lat.add(outcome.service_ns)
        hist.add(outcome.service_ns)
    return stats, lat, hist, bank


def run_fault_sweep(
    rates: tuple[float, ...] = DEFAULT_RATES,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    *,
    workload: str = "dedup",
    requests_per_core: int = 600,
    seed: int = 20160816,
    config: SystemConfig | None = None,
) -> list[FaultSweepRow]:
    """Sweep transient bit-error rate x scheme -> latency/energy rows."""
    base = config if config is not None else default_config()
    trace = generate_trace(workload, requests_per_core, seed=seed)
    rows = []
    for scheme_name in schemes:
        for rate in rates:
            cfg = base.replace(
                faults=FaultConfig(
                    enabled=True,
                    transient_bit_error_rate=rate,
                    seed=seed,
                )
            )
            stats, lat, hist, bank = replay_writes(scheme_name, trace, cfg)
            model = bank.scheme.faults
            rows.append(
                FaultSweepRow(
                    scheme=scheme_name,
                    rate=rate,
                    writes=stats.writes,
                    mean_attempts=stats.mean_attempts,
                    retry_rate=stats.retry_rate,
                    mean_service_ns=lat.mean,
                    p50_service_ns=hist.percentile(50.0),
                    p99_service_ns=hist.percentile(99.0),
                    mean_energy=(
                        bank.stats.energy / stats.writes if stats.writes else 0.0
                    ),
                    degraded_writes=stats.degraded_writes,
                    retirements=model.retirements if model is not None else 0,
                    uncorrectable=stats.uncorrectable,
                )
            )
    return rows


def retirement_curve(
    *,
    scheme_name: str = "dcw",
    lines: int = 4,
    hammer_writes: int = 400,
    sample_every: int = 50,
    endurance_mean: float = 60.0,
    endurance_sigma: float = 0.3,
    ecp_entries: int = 4,
    spare_lines: int = 2,
    seed: int = 20160816,
    config: SystemConfig | None = None,
) -> list[RetirementPoint]:
    """Hammer a few lines until the array degrades; snapshot the cascade.

    Alternating complementary payloads force near-worst-case cell traffic
    so a tiny ``endurance_mean`` exercises the whole degradation ladder
    (stuck cells -> ECP -> retirement -> uncorrectable) in a few hundred
    writes.  The curve stops early once every hammered line is lost.
    """
    base = config if config is not None else default_config()
    cfg = base.replace(
        faults=FaultConfig(
            enabled=True,
            endurance_mean=endurance_mean,
            endurance_sigma=endurance_sigma,
            ecp_entries=ecp_entries,
            spare_lines=spare_lines,
            seed=seed,
        )
    )
    scheme = get_scheme(scheme_name, cfg)
    bank = PCMBank(0, scheme, cfg)
    model = scheme.faults
    units = cfg.data_units_per_line
    rng = np.random.default_rng(np.random.SeedSequence([seed, 3]))
    patterns = rng.integers(0, np.iinfo(np.uint64).max, size=units, dtype=_U64)
    stats = FaultStats()
    points: list[RetirementPoint] = []
    dead: set[int] = set()

    def snapshot(issued: int) -> RetirementPoint:
        stuck = sum(model.stuck_cells(line, units) for line in range(lines))
        return RetirementPoint(
            writes_issued=issued,
            stuck_cells=stuck,
            ecp_lines=len(model.ecp.lines_with_entries()),
            retired_lines=len(model.spares.retired_lines),
            mean_attempts=stats.mean_attempts,
            uncorrectable=stats.uncorrectable,
        )

    issued = 0
    for i in range(hammer_writes):
        line = i % lines
        if line in dead:
            continue
        payload = patterns if (i // lines) % 2 == 0 else ~patterns
        try:
            outcome = bank.write(line, payload.copy())
        except UncorrectableWriteError:
            stats.uncorrectable += 1
            dead.add(line)
        else:
            stats.observe(outcome)
        issued += 1
        if issued % sample_every == 0:
            points.append(snapshot(issued))
        if len(dead) == lines:
            break
    if not points or points[-1].writes_issued != issued:
        points.append(snapshot(issued))
    return points
