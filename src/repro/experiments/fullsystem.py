"""Full-system experiment plumbing: service models + the Fig 11-14 runs.

Two interchangeable :class:`~repro.memctrl.controller.ServiceModel`
implementations:

* :class:`PrecomputedServiceModel` — the fast path.  Before the DES runs,
  :func:`precompute_write_service` prices every write of the trace in one
  vectorized pass (closed forms for the baselines, the batch Algorithm-2
  packer for Tetris).  Valid because per-line write order under the
  FCFS-per-bank controller equals trace order, so the content evolution
  each write sees is known up front.
* :class:`FunctionalServiceModel` — the slow path.  A live
  :class:`~repro.pcm.device.PCMDevice` with realized payloads services
  every request through the actual scheme objects; used by integration
  tests to validate the fast path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig, default_config
from repro.core.batch import pack_batch
from repro.cpu.system import CMPSystem, SystemResult
from repro.memctrl.request import MemRequest
from repro.pcm.device import PCMDevice
from repro.schemes import get_scheme
from repro.trace.content import realize_payload
from repro.trace.record import Trace

__all__ = [
    "PrecomputedServiceModel",
    "FunctionalServiceModel",
    "precompute_write_service",
    "run_fullsystem",
]


@dataclass(frozen=True)
class WriteServiceTable:
    """Per-write pricing for one (trace, scheme) pair."""

    scheme: str
    service_ns: np.ndarray   # (n_writes,)
    units: np.ndarray        # (n_writes,) write-stage length in t_set units
    energy: np.ndarray       # (n_writes,) normalized energy

    def mean_units(self) -> float:
        return float(self.units.mean()) if self.units.size else 0.0


def precompute_write_service(
    trace: Trace,
    scheme_name: str,
    config: SystemConfig | None = None,
    *,
    variation=None,
    adaptive_analysis: bool = False,
) -> WriteServiceTable:
    """Price every write of a trace under one scheme, vectorized.

    The trace's per-write (SET, RESET) unit counts are post-inversion by
    construction (every unit changes at most half its cells, so the flip
    stage is the identity — see :mod:`repro.trace.content`), which lets
    the baselines use their closed forms directly and Tetris use the
    batch packer on the raw counts.

    ``variation`` (a :class:`~repro.pcm.variation.ProcessVariation`)
    scales each write's service time by its target line's regional
    cell-speed factor.
    """
    config = config if config is not None else default_config()
    scheme = get_scheme(scheme_name, config)
    n_writes = trace.n_writes
    n_set = trace.write_counts[..., 0].astype(np.int64)
    n_reset = trace.write_counts[..., 1].astype(np.int64)
    changed_set = n_set.sum(axis=1)
    changed_reset = n_reset.sum(axis=1)
    cells_per_line = trace.units_per_line * config.data_unit_bits
    em = scheme.energy_model
    read_energy = em.read_energy_per_line if scheme.requires_read else 0.0

    if scheme_name == "preset":
        # PreSET demand depends on the absolute zero-count of the new
        # data, which count tables do not carry; random line content has
        # ~half zeros per unit, so we charge the expectation (32/unit).
        from repro.core.batch import pack_batch as _pack

        n_zero = np.full((n_writes, trace.units_per_line), 32, dtype=np.int64)
        packed = _pack(
            np.zeros_like(n_zero), n_zero,
            K=config.K, L=config.L,
            power_budget=config.bank_power_budget, allow_split=True,
        )
        units = packed.service_units()
        service = units * config.timings.t_set_ns
        cells = n_zero.sum(axis=1).astype(np.float64)
        energy = cells * (em.e_reset + em.e_set)  # demand RESET + deferred SET
        if variation is not None:
            write_lines = trace.records["line"][trace.records["op"] == 1]
            service = variation.apply(service, write_lines.astype(np.int64))
        return WriteServiceTable(
            scheme=scheme_name,
            service_ns=np.asarray(service, dtype=np.float64),
            units=np.asarray(units, dtype=np.float64),
            energy=np.asarray(energy, dtype=np.float64),
        )

    if scheme_name == "tetris_relaxed":
        # No vectorized packer for the unaligned variant: per-write loop
        # (fine for bench-scale traces; the aligned "tetris" is the fast
        # path for big grids).
        units = np.array(
            [
                scheme.service_units_for_counts(n_set[w], n_reset[w])
                for w in range(n_writes)
            ]
        )
        service = (
            config.timings.t_read_ns
            + config.analysis_overhead_ns
            + units * config.timings.t_set_ns
        )
        energy = em.write_energy(changed_set, changed_reset) + read_energy
    elif scheme_name == "datacon":
        # One conventional per-data-unit share per dirty unit; energy is
        # DCW's (changed cells, plain encoding).  Mirrored bit-identically
        # by the fastpath pricer.
        dirty = np.count_nonzero(n_set + n_reset, axis=1)
        per_dirty = config.units_per_line / config.data_units_per_line
        units = dirty.astype(np.float64) * per_dirty
        service = config.timings.t_read_ns + units * config.timings.t_set_ns
        energy = em.write_energy(changed_set, changed_reset) + read_energy
    elif scheme_name == "palp":
        # min(serial Algorithm 2, slowest partition at budget/P) — the
        # batch analogue of PALPWrite's two-plan controller.
        serial = pack_batch(
            n_set,
            n_reset,
            K=config.K,
            L=config.L,
            power_budget=config.bank_power_budget,
            allow_split=True,
        ).service_units()
        units = serial
        if scheme.partition_feasible:
            parts = scheme.partitions
            chunk = -(-n_set.shape[1] // parts)  # ceil division
            worst = np.zeros(n_writes, dtype=np.float64)
            for p in range(parts):
                lo, hi = p * chunk, min((p + 1) * chunk, n_set.shape[1])
                if lo >= hi:
                    break
                worst = np.maximum(
                    worst,
                    pack_batch(
                        n_set[:, lo:hi],
                        n_reset[:, lo:hi],
                        K=config.K,
                        L=config.L,
                        power_budget=config.bank_power_budget / parts,
                        allow_split=True,
                    ).service_units(),
                )
            units = np.minimum(serial, worst)
        service = (
            config.timings.t_read_ns
            + config.analysis_overhead_ns
            + units * config.timings.t_set_ns
        )
        energy = em.write_energy(changed_set, changed_reset) + read_energy
    elif scheme_name == "tetris":
        packed = pack_batch(
            n_set,
            n_reset,
            K=config.K,
            L=config.L,
            power_budget=config.bank_power_budget,
            allow_split=True,
        )
        units = packed.service_units()
        if adaptive_analysis:
            # Hardware fast path (see TetrisWrite.adaptive_analysis):
            # trivial schedules answer in 4 cycles instead of 41.
            in1 = changed_set.astype(np.float64)
            in0 = changed_reset.astype(np.float64) * config.L
            trivial = (in1 <= config.bank_power_budget) & (
                in1 + in0 <= config.bank_power_budget
            )
            analysis = np.where(trivial, 10.0, config.analysis_overhead_ns)
        else:
            analysis = config.analysis_overhead_ns
        service = (
            config.timings.t_read_ns
            + analysis
            + units * config.timings.t_set_ns
        )
        energy = em.write_energy(changed_set, changed_reset) + read_energy
    else:
        units = np.full(n_writes, scheme.worst_case_units())
        service = np.full(n_writes, scheme.worst_case_service_ns())
        if scheme_name in ("conventional", "two_stage"):
            # These program *every* cell; without payloads the expected
            # polarity split of random data is half/half.
            half = cells_per_line / 2.0
            energy = np.full(n_writes, float(em.write_energy(half, half)))
            energy += read_energy
        else:
            energy = em.write_energy(changed_set, changed_reset) + read_energy

    if variation is not None:
        write_lines = trace.records["line"][trace.records["op"] == 1]
        service = variation.apply(
            np.asarray(service, dtype=np.float64),
            write_lines.astype(np.int64),
        )

    return WriteServiceTable(
        scheme=scheme_name,
        service_ns=np.asarray(service, dtype=np.float64),
        units=np.asarray(units, dtype=np.float64),
        energy=np.asarray(energy, dtype=np.float64),
    )


class PrecomputedServiceModel:
    """Prices requests from a :class:`WriteServiceTable`."""

    def __init__(self, table: WriteServiceTable, config: SystemConfig) -> None:
        self.table = table
        self.t_read = config.timings.t_read_ns

    def read_ns(self, req: MemRequest) -> float:
        return self.t_read

    def write_ns(self, req: MemRequest) -> float:
        if req.write_idx < 0:
            raise ValueError(f"write request without a write index: {req}")
        return float(self.table.service_ns[req.write_idx])

    def predict_write_ns(self, req: MemRequest) -> float:
        """Side-effect-free prediction (enables the SJF drain order)."""
        return self.write_ns(req)


class FunctionalServiceModel:
    """Prices requests by actually performing them on a PCM device.

    Payloads are realized lazily against the device's live contents using
    a per-write seeded RNG, so pricing is deterministic and independent
    of bank service interleaving (per-line write order is preserved by
    the FCFS-per-bank controller).
    """

    def __init__(
        self,
        trace: Trace,
        scheme_name: str,
        config: SystemConfig | None = None,
        *,
        verify_cells: bool = False,
    ) -> None:
        self.config = config if config is not None else default_config()
        self.trace = trace
        self.device = PCMDevice(
            lambda cfg: get_scheme(scheme_name, cfg),
            self.config,
            verify_cells=verify_cells,
        )
        self.outcomes: dict[int, object] = {}

    def read_ns(self, req: MemRequest) -> float:
        _, t = self.device.read(req.line)
        return t

    def write_ns(self, req: MemRequest) -> float:
        w = req.write_idx
        if w < 0:
            raise ValueError(f"write request without a write index: {req}")
        bank = self.device.bank_for(req.line)
        old_logical = bank.image.read_logical(req.line)
        rng = np.random.default_rng(
            np.random.SeedSequence([self.trace.seed, w])
        )
        new_logical = realize_payload(
            rng, old_logical, self.trace.write_counts[w], self.config.data_unit_bits
        )
        outcome = bank.write(req.line, new_logical)
        self.outcomes[w] = outcome
        return outcome.service_ns


def run_fullsystem(
    trace: Trace,
    scheme_name: str,
    config: SystemConfig | None = None,
    *,
    functional: bool = False,
    enable_forwarding: bool = True,
    table: WriteServiceTable | None = None,
    warmup_requests: int = 0,
) -> SystemResult:
    """One complete Fig 11-14 style run: trace x scheme -> SystemResult.

    Pass a pre-built ``table`` to avoid re-pricing the trace when the
    caller already has one (the grid runner does).
    """
    config = config if config is not None else default_config()
    if functional:
        service = FunctionalServiceModel(trace, scheme_name, config)
    else:
        if table is None:
            table = precompute_write_service(trace, scheme_name, config)
        service = PrecomputedServiceModel(table, config)
    system = CMPSystem(
        trace,
        config,
        service,
        scheme_name=scheme_name,
        enable_forwarding=enable_forwarding,
        warmup_requests=warmup_requests,
    )
    return system.run()
