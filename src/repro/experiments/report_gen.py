"""One-shot report generator: every experiment into a single Markdown file.

``tetris-write report --out REPORT.md`` runs the complete evaluation —
workload characterization, write units, the four full-system figures,
and the ablation sweeps — at a configurable scale, and renders a
self-contained Markdown report with the paper's reference numbers
alongside the measurements.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.config import SystemConfig, default_config
from repro.experiments import ablation
from repro.experiments.fig03 import measure_bit_profile
from repro.experiments.fig10 import measure_write_units
from repro.experiments.runner import run_schemes_on_workloads
from repro.trace.synthetic import generate_trace
from repro.trace.workloads import WORKLOAD_NAMES

__all__ = ["generate_report"]

SCHEMES = ("dcw", "flip_n_write", "two_stage", "three_stage", "tetris")
COMPARED = SCHEMES[1:]

PAPER_AVERAGES = {
    "read_latency": {"flip_n_write": 0.61, "two_stage": 0.50,
                     "three_stage": 0.44, "tetris": 0.35},
    "ipc_improvement": {"flip_n_write": 1.4, "two_stage": 1.6,
                        "three_stage": 1.8, "tetris": 2.0},
}


def _code(text: str) -> str:
    return f"```\n{text}\n```\n"


def generate_report(
    out_path: str | Path,
    *,
    requests_per_core: int = 2000,
    seed: int = 20160816,
    config: SystemConfig | None = None,
) -> Path:
    """Run everything and write the Markdown report; returns the path."""
    cfg = config if config is not None else default_config()
    traces = {
        name: generate_trace(name, requests_per_core, seed=seed)
        for name in WORKLOAD_NAMES
    }

    sections: list[str] = [
        "# Tetris Write — reproduction report\n",
        f"Operating point: Table II defaults, {requests_per_core} "
        f"requests/core, seed {seed}.\n",
    ]

    # ------------------------------------------------------- Fig 3
    rows3 = [measure_bit_profile(t) for t in traces.values()]
    sections.append("## Figure 3 — bit-writes per 64-bit data unit\n")
    sections.append(_code(format_table(
        ["workload", "SET", "RESET", "total"],
        [[r.workload, r.mean_set, r.mean_reset, r.total] for r in rows3],
    )))
    sections.append(
        f"Average {arithmetic_mean([r.mean_set for r in rows3]):.2f} SET + "
        f"{arithmetic_mean([r.mean_reset for r in rows3]):.2f} RESET "
        "(paper: 6.7 + 2.9).\n"
    )

    # ------------------------------------------------------- Fig 10
    rows10 = [measure_write_units(t, cfg) for t in traces.values()]
    sections.append("## Figure 10 — write units per cache-line write\n")
    sections.append(_code(format_table(
        ["workload", "DCW", "FNW", "2SW", "3SW", "Tetris"],
        [[r.workload, r.dcw, r.flip_n_write, r.two_stage, r.three_stage,
          r.tetris] for r in rows10],
    )))

    # ------------------------------------------------- Figs 11-14
    grid = run_schemes_on_workloads(
        SCHEMES, WORKLOAD_NAMES, config=cfg,
        requests_per_core=requests_per_core, seed=seed, traces=traces,
    )
    base = {r.workload: r for r in grid if r.scheme == "dcw"}
    for metric, title, fig in (
        ("read_latency", "read latency (normalized)", "Figure 11"),
        ("write_latency", "write latency (normalized)", "Figure 12"),
        ("ipc_improvement", "IPC improvement", "Figure 13"),
        ("running_time", "running time (normalized)", "Figure 14"),
    ):
        rows = []
        means = {s: [] for s in COMPARED}
        for wl in WORKLOAD_NAMES:
            row = [wl]
            for s in COMPARED:
                r = next(x for x in grid if x.workload == wl and x.scheme == s)
                v = r.normalized(base[wl])[metric]
                means[s].append(v)
                row.append(v)
            rows.append(row)
        rows.append(["AVERAGE"] + [arithmetic_mean(means[s]) for s in COMPARED])
        sections.append(f"## {fig} — {title}\n")
        sections.append(_code(format_table(
            ["workload", "FNW", "2SW", "3SW", "Tetris"], rows
        )))

    # ------------------------------------------------- ablations
    dedup = traces["dedup"]
    sections.append("## Ablations\n")
    for name, sweep in (
        ("power budget", ablation.sweep_power_budget),
        ("time asymmetry K", ablation.sweep_time_asymmetry),
        ("power asymmetry L", ablation.sweep_power_asymmetry),
        ("mobile write-unit width", ablation.sweep_write_unit_width),
    ):
        points = sweep(dedup)
        sections.append(f"### {name}\n")
        sections.append(_code(format_table(
            ["value", "mean units", "result", "subresult"],
            [[p.value, p.mean_units, p.mean_result, p.mean_subresult]
             for p in points],
        )))

    # ------------------------------------------------- extensions
    sections.append("## Extensions (beyond the paper)\n")
    from repro.analysis.power_util import power_utilization
    from repro.config import MemCtrlConfig

    util_rows = []
    for wl in ("blackscholes", "dedup", "vips"):
        t = traces[wl]
        n_set = t.write_counts[..., 0].astype(int)
        n_reset = t.write_counts[..., 1].astype(int)
        util_rows.append([
            wl,
            100 * float(power_utilization(n_set, n_reset, "flip_n_write").mean()),
            100 * float(power_utilization(n_set, n_reset, "tetris").mean()),
        ])
    sections.append("### Power-budget utilization (§III motivation)\n")
    sections.append(_code(format_table(
        ["workload", "FNW %", "Tetris %"], util_rows
    )))

    pause_cfg = cfg.replace(memctrl=MemCtrlConfig(write_pausing=True))
    pause_rows = []
    for scheme in ("dcw", "tetris"):
        base = run_schemes_on_workloads(
            (scheme,), ("dedup",), config=cfg,
            requests_per_core=requests_per_core, seed=seed, traces=traces,
        )[0]
        paused = run_schemes_on_workloads(
            (scheme,), ("dedup",), config=pause_cfg,
            requests_per_core=requests_per_core, seed=seed, traces=traces,
        )[0]
        pause_rows.append([
            scheme, base.read_latency_ns, paused.read_latency_ns,
        ])
    sections.append("### Write pausing (refs [23-24], dedup)\n")
    sections.append(_code(format_table(
        ["scheme", "read lat", "read lat w/ pausing"], pause_rows
    )))

    sections.append(
        "Full extension results (MLC, subarrays, SJF drains, endurance,"
        " variation, line-size scaling, seed stability) live in"
        " `benchmarks/out/` after `pytest benchmarks/ --benchmark-only`;"
        " see EXPERIMENTS.md for the curated summary.\n"
    )

    out = Path(out_path)
    out.write_text("\n".join(sections))
    return out
