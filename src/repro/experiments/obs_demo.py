"""Traced demonstration runs for the observability subsystem.

Two entry points back the ``tetris-write obs`` CLI command and the CI
trace-artifact job:

* :func:`run_traced_writes` — a standalone write loop through one
  :class:`~repro.pcm.bank.PCMBank` with functional chips, driven by a
  :class:`~repro.obs.tracer.ManualClock` advanced by each outcome's
  service time.  The resulting timeline shows, per chip, the FSM1
  write-1 slices overlapping the FSM0 write-0 slices — the paper's
  Figure 4 rendered by Perfetto.
* :func:`run_traced_fullsystem` — a short Fig 11-14 style run through
  the functional service model with tracing enabled: engine events,
  controller queue depths, per-bank service spans and the scheme/chip
  timelines all land on one simulated-time trace.

Both return the tracer still holding the recorded events; callers
export with :func:`repro.obs.write_chrome_trace` /
:func:`repro.obs.collapsed_stacks`.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig, TraceConfig, default_config
from repro.obs.runtime import tracing
from repro.obs.tracer import ManualClock, TraceEvent, Tracer

__all__ = [
    "traced_config",
    "run_traced_writes",
    "run_traced_fullsystem",
    "fsm_overlap_ns",
]

_U64 = np.uint64


def traced_config(
    base: SystemConfig | None = None, *, buffer_events: int = 1 << 16
) -> SystemConfig:
    """A config with tracing enabled on the sim clock domain."""
    cfg = base if base is not None else default_config()
    return cfg.replace(
        trace=TraceConfig(enabled=True, buffer_events=buffer_events, clock="sim")
    )


def _random_update(rng: np.random.Generator, old: np.ndarray, p: float = 0.15):
    """Flip ~``p`` of the cells of each unit (mixed SET/RESET demand)."""
    bits = rng.random((old.size, 64)) < p
    shifts = np.arange(64, dtype=_U64)
    mask = np.bitwise_or.reduce(bits.astype(_U64) << shifts, axis=1)
    return old ^ mask


def run_traced_writes(
    scheme_name: str = "tetris",
    *,
    n_writes: int = 32,
    n_lines: int = 8,
    seed: int = 20160816,
    config: SystemConfig | None = None,
    verify_cells: bool = True,
    gap_ns: float = 50.0,
) -> tuple[Tracer, list]:
    """Trace a standalone write loop through one functional bank.

    Returns ``(tracer, outcomes)``; the tracer is *not* left installed.
    """
    from repro.pcm.bank import PCMBank
    from repro.schemes import get_scheme

    cfg = traced_config(config)
    rng = np.random.default_rng(seed)
    outcomes = []
    with tracing(Tracer(capacity=cfg.trace.buffer_events,
                        clock=ManualClock())) as tracer:
        scheme = get_scheme(scheme_name, cfg)
        bank = PCMBank(0, scheme, cfg, verify_cells=verify_cells)
        for w in range(n_writes):
            line = int(rng.integers(0, n_lines))
            old = bank.image.read_logical(line)
            new = _random_update(rng, old)
            outcome = bank.write(line, new)
            outcomes.append(outcome)
            tracer.clock.advance(outcome.service_ns + gap_ns)
    return tracer, outcomes


def run_traced_fullsystem(
    workload: str = "dedup",
    *,
    scheme_name: str = "tetris",
    requests_per_core: int = 200,
    seed: int = 20160816,
    config: SystemConfig | None = None,
    verify_cells: bool = True,
):
    """Trace a short functional full-system slice.

    Returns ``(tracer, SystemResult)``; the tracer is *not* left
    installed, so subsequent runs in the same process stay untraced.
    """
    from repro.cpu.system import CMPSystem
    from repro.experiments.fullsystem import FunctionalServiceModel
    from repro.trace.synthetic import generate_trace

    cfg = traced_config(config)
    trace = generate_trace(workload, requests_per_core, seed=seed)
    with tracing(Tracer(capacity=cfg.trace.buffer_events)) as tracer:
        service = FunctionalServiceModel(
            trace, scheme_name, cfg, verify_cells=verify_cells
        )
        system = CMPSystem(trace, cfg, service, scheme_name=scheme_name)
        result = system.run()
    return tracer, result


# ----------------------------------------------------------------------
# Overlap measurement: the acceptance criterion made checkable.
# ----------------------------------------------------------------------
def fsm_overlap_ns(
    source: Tracer | list[TraceEvent], *, pid: str | None = None
) -> dict[str, float]:
    """Per-process overlap between the FSM1 and FSM0 lanes, in ns.

    For every process (chip / bank) holding both lanes, sums the time
    during which at least one write-1 slice and at least one write-0
    slice are simultaneously active — nonzero iff the Tetris property
    (write-0s running in the interspaces of in-flight write-1s) shows
    in the trace.  ``pid`` restricts the check to one process.
    """
    events = source.events() if isinstance(source, Tracer) else list(source)
    lanes: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for ev in events:
        if ev.kind != "span" or ev.tid not in ("FSM1 write-1", "FSM0 write-0"):
            continue
        if pid is not None and ev.pid != pid:
            continue
        lanes.setdefault(ev.pid, {}).setdefault(ev.tid, []).append(
            (ev.ts_ns, ev.end_ns)
        )

    def union(iv: list[tuple[float, float]]) -> list[tuple[float, float]]:
        out: list[tuple[float, float]] = []
        for lo, hi in sorted(iv):
            if out and lo <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], hi))
            else:
                out.append((lo, hi))
        return out

    overlap: dict[str, float] = {}
    for proc, by_tid in lanes.items():
        a = union(by_tid.get("FSM1 write-1", []))
        b = union(by_tid.get("FSM0 write-0", []))
        total, i, j = 0.0, 0, 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if hi > lo:
                total += hi - lo
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        overlap[proc] = total
    return overlap
