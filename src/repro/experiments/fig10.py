"""Figure 10: the average number of write units per cache-line write.

Sequentially executed write units are the paper's primary cost metric.
The baselines sit at their worst-case constants (DCW 8, Flip-N-Write 4,
2-Stage-Write 3, Three-Stage-Write 2.5); Tetris Write's count is measured
per write (paper: 1.06-1.46 on average, lowest for the light workloads,
highest where many cells change — dedup, vips).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, default_config, theoretical_write_units
from repro.core.batch import pack_batch
from repro.trace.record import Trace
from repro.trace.synthetic import generate_trace
from repro.trace.workloads import WORKLOAD_NAMES

__all__ = ["WriteUnitsRow", "measure_write_units", "run_fig10"]


@dataclass(frozen=True)
class WriteUnitsRow:
    """One workload's Figure-10 bars."""

    workload: str
    dcw: float
    flip_n_write: float
    two_stage: float
    three_stage: float
    tetris: float
    tetris_result: float     # mean write units consumed by write-1s
    tetris_subresult: float  # mean extra sub-slots consumed by write-0s


def measure_write_units(
    trace: Trace, config: SystemConfig | None = None
) -> WriteUnitsRow:
    """Pack every write of a trace and average Equation 5's unit count."""
    cfg = config if config is not None else default_config()
    theory = theoretical_write_units(cfg)
    packed = pack_batch(
        trace.write_counts[..., 0].astype(int),
        trace.write_counts[..., 1].astype(int),
        K=cfg.K,
        L=cfg.L,
        power_budget=cfg.bank_power_budget,
    )
    units = packed.service_units()
    return WriteUnitsRow(
        workload=trace.workload,
        dcw=theory["dcw"],
        flip_n_write=theory["flip_n_write"],
        two_stage=theory["two_stage"],
        three_stage=theory["three_stage"],
        tetris=float(units.mean()) if units.size else 0.0,
        tetris_result=float(packed.result.mean()) if units.size else 0.0,
        tetris_subresult=float(packed.subresult.mean()) if units.size else 0.0,
    )


def run_fig10(
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    *,
    requests_per_core: int = 2000,
    seed: int = 20160816,
    config: SystemConfig | None = None,
) -> list[WriteUnitsRow]:
    """Regenerate Figure 10's series for the given workloads."""
    cfg = config if config is not None else default_config()
    rows = []
    for name in workloads:
        trace = generate_trace(name, requests_per_core, seed=seed)
        rows.append(measure_write_units(trace, cfg))
    return rows
