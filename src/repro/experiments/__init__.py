"""Experiment harnesses: one module per paper figure/table family.

* :mod:`repro.experiments.fig03` — workload bit-change characterization.
* :mod:`repro.experiments.fig10` — write units per cache-line write.
* :mod:`repro.experiments.fullsystem` — the Fig 11-14 full-system runs
  (read/write latency, IPC, running time) and the service models.
* :mod:`repro.experiments.ablation` — sensitivity sweeps over K, L,
  power budget, write-unit width and scheduler variants.
* :mod:`repro.experiments.runner` — orchestration + result tables.
"""

from repro.experiments.fullsystem import (
    FunctionalServiceModel,
    PrecomputedServiceModel,
    precompute_write_service,
    run_fullsystem,
)
from repro.experiments.runner import ExperimentResult, run_schemes_on_workloads

__all__ = [
    "ExperimentResult",
    "FunctionalServiceModel",
    "PrecomputedServiceModel",
    "precompute_write_service",
    "run_fullsystem",
    "run_schemes_on_workloads",
]
