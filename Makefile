# Convenience targets — same commands CI runs (.github/workflows/ci.yml).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint verify bench all

test:            ## tier-1 test suite
	$(PYTHON) -m pytest -x -q

lint:            ## simulator-aware static analysis (docs/SIMLINT.md)
	$(PYTHON) -m simlint src/ tests/ benchmarks/ examples/ tools/

verify:          ## test suite with runtime invariant checking armed
	REPRO_VERIFY=1 $(PYTHON) -m pytest -x -q

bench:           ## paper-figure benches (prints + writes benchmarks/out/)
	$(PYTHON) -m pytest benchmarks/ -q

all: lint test
