# Convenience targets — same commands CI runs (.github/workflows/ci.yml).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint verify oracle bench bench-quick bench-fastpath bench-scheme-zoo bench-service faults trace all

test:            ## tier-1 test suite
	$(PYTHON) -m pytest -x -q

lint:            ## simulator-aware static analysis (docs/SIMLINT.md)
	$(PYTHON) -m simlint src/ tests/ benchmarks/ examples/ tools/

verify:          ## test suite with runtime invariant checking armed
	REPRO_VERIFY=1 $(PYTHON) -m pytest -x -q

oracle:          ## differential + metamorphic oracle run (docs/ORACLE.md)
	$(PYTHON) -m repro.cli oracle --cases 2000
	$(PYTHON) -m pytest -x -q tests/test_oracle.py

bench:           ## paper-figure benches (prints + writes benchmarks/out/)
	$(PYTHON) -m pytest benchmarks/ -q

bench-quick:     ## full Fig 11-14 grid, DES + fastpath -> BENCH_sweep.json
	$(PYTHON) benchmarks/quick_sweep.py

bench-fastpath:  ## fastpath/vector speedup gates -> BENCH_fastpath.json
	$(PYTHON) benchmarks/bench_fastpath.py

bench-scheme-zoo: ## cross-paper scheme x workload grid -> BENCH_scheme_zoo.json
	$(PYTHON) benchmarks/bench_scheme_zoo.py

bench-service:   ## pinned two-tenant server run -> BENCH_service.json
	$(PYTHON) benchmarks/bench_service.py

faults:          ## fault-injection smoke: tests at 1e-3 + overhead bench
	REPRO_VERIFY=1 REPRO_FAULT_RATE=1e-3 $(PYTHON) -m pytest -x -q tests/test_faults.py
	$(PYTHON) -m pytest -q benchmarks/bench_faults.py

trace:           ## record + validate a Perfetto trace (docs/OBSERVABILITY.md)
	$(PYTHON) -m repro.cli obs --fullsystem --requests 120 --out trace.json \
		--flamegraph trace_flame.txt --metrics trace_metrics.json

all: lint test
