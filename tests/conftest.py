"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Run the whole suite with the runtime invariant verifier armed (see
# repro.verify.invariants): every schedule and outcome a scheme produces
# during tests is contract-checked.  An explicit REPRO_VERIFY=0 in the
# environment still wins, and individual tests monkeypatch as needed.
os.environ.setdefault("REPRO_VERIFY", "1")

# Keep tests hermetic: never read or write the user's on-disk result
# cache (repro.parallel.resultcache).  Cache-behavior tests construct
# explicit ResultCache instances under tmp_path, which bypass this.
os.environ.setdefault("REPRO_NO_CACHE", "1")

from repro.config import default_config  # noqa: E402


@pytest.fixture
def config():
    """The paper's Table II configuration."""
    return default_config()

@pytest.fixture
def rng():
    """Deterministic RNG for content generation in tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def line8(rng):
    """A random 64 B line as 8 uint64 data units."""
    return rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
