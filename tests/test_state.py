"""Tests for LineState / MemoryImage (stored cell state)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pcm.state import LineState, MemoryImage, initial_line_content

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestLineState:
    def test_from_logical_starts_unflipped(self, line8):
        state = LineState.from_logical(line8)
        assert not state.flip.any()
        assert np.array_equal(state.logical, line8)

    @given(st.lists(u64, min_size=4, max_size=4), st.lists(st.booleans(), min_size=4, max_size=4))
    def test_logical_decodes_flip(self, words, flips):
        physical = np.array(words, dtype=np.uint64)
        flip = np.array(flips)
        state = LineState(physical.copy(), flip.copy())
        expected = np.where(flip, ~physical, physical)
        assert np.array_equal(state.logical, expected)

    def test_copy_is_independent(self, line8):
        a = LineState.from_logical(line8)
        b = a.copy()
        b.physical[0] = np.uint64(0)
        assert a.physical[0] == line8[0]

    def test_store_commits(self, line8):
        state = LineState.from_logical(line8)
        newp = np.zeros(8, dtype=np.uint64)
        newf = np.ones(8, dtype=bool)
        state.store(newp, newf)
        assert np.array_equal(state.physical, newp)
        assert state.flip.all()


class TestInitialContent:
    def test_deterministic(self):
        a = initial_line_content(1, 42)
        b = initial_line_content(1, 42)
        assert np.array_equal(a, b)

    def test_varies_with_address(self):
        assert not np.array_equal(initial_line_content(1, 1), initial_line_content(1, 2))

    def test_varies_with_seed(self):
        assert not np.array_equal(initial_line_content(1, 7), initial_line_content(2, 7))

    def test_unit_count(self):
        assert initial_line_content(0, 0, units=4).shape == (4,)

    def test_roughly_balanced_bits(self):
        lines = np.concatenate([initial_line_content(0, i) for i in range(50)])
        mean_ones = np.bitwise_count(lines).mean()
        assert 30 < mean_ones < 34


class TestMemoryImage:
    def test_lazy_materialization(self):
        img = MemoryImage(seed=3)
        assert len(img) == 0
        img.line(100)
        assert len(img) == 1
        assert img.touched_lines() == [100]

    def test_same_line_same_object(self):
        img = MemoryImage(seed=3)
        assert img.line(5) is img.line(5)

    def test_read_logical_matches_initializer(self):
        img = MemoryImage(seed=9)
        assert np.array_equal(img.read_logical(17), initial_line_content(9, 17))

    def test_units_per_line_respected(self):
        img = MemoryImage(seed=0, units_per_line=4)
        assert img.line(0).physical.shape == (4,)

    def test_two_images_same_seed_agree(self):
        a = MemoryImage(seed=11)
        b = MemoryImage(seed=11)
        assert np.array_equal(a.read_logical(123), b.read_logical(123))
