"""Service protocol robustness: the server must never die from input.

Satellite (c) of ISSUE 8: malformed frames, truncated frames, oversized
frames, unknown verbs, and mid-stream disconnects each produce either a
structured error frame or a clean close — and none of them affect other
tenants' jobs.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.parallel import ResultCache
from repro.service import SweepService
from repro.service.client import parse_endpoint
from repro.service.jobs import MAX_GRID_CELLS, GridSpec
from repro.service.protocol import (
    E_BAD_FRAME,
    E_BAD_GRID,
    E_BAD_VERSION,
    E_FRAME_TOO_LARGE,
    E_UNKNOWN_JOB,
    E_UNKNOWN_VERB,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
    request_frame,
)

GRID = {"schemes": ["dcw"], "workloads": ["swaptions"], "requests_per_core": 60}


# ----------------------------------------------------------------------
# Pure frame-layer units (no server).
# ----------------------------------------------------------------------
class TestFrames:
    def test_roundtrip(self):
        frame = request_frame("ping", extra=1)
        assert decode_frame(encode_frame(frame)) == frame
        assert frame["v"] == PROTOCOL_VERSION

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError) as e:
            decode_frame(b"{not json}\n")
        assert e.value.code == E_BAD_FRAME

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError) as e:
            decode_frame(b"[1, 2, 3]\n")
        assert e.value.code == E_BAD_FRAME

    def test_decode_rejects_missing_version(self):
        with pytest.raises(ProtocolError) as e:
            decode_frame(b'{"verb": "ping"}\n')
        assert e.value.code == E_BAD_VERSION

    def test_decode_rejects_future_version(self):
        with pytest.raises(ProtocolError) as e:
            decode_frame(b'{"v": 99, "verb": "ping"}\n')
        assert e.value.code == E_BAD_VERSION

    def test_decode_rejects_oversized_line(self):
        line = json.dumps({"v": 1, "pad": "x" * MAX_FRAME_BYTES}).encode()
        with pytest.raises(ProtocolError) as e:
            decode_frame(line)
        assert e.value.code == E_FRAME_TOO_LARGE

    def test_encode_rejects_oversized_frame(self):
        with pytest.raises(ProtocolError) as e:
            encode_frame(ok_frame(pad="x" * MAX_FRAME_BYTES))
        assert e.value.code == E_FRAME_TOO_LARGE

    def test_error_frame_carries_retry_after(self):
        frame = error_frame("draining", "later", retry_after_s=2.5)
        assert frame["error"]["retry_after_s"] == 2.5

    def test_protocol_error_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            ProtocolError("no-such-code", "boom")


class TestEndpoints:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("unix:/run/tw.sock", ("unix", "/run/tw.sock")),
            ("/run/tw.sock", ("unix", "/run/tw.sock")),
            ("./tw.sock", ("unix", "./tw.sock")),
            ("tcp:127.0.0.1:7733", ("tcp", ("127.0.0.1", 7733))),
            ("localhost:7733", ("tcp", ("localhost", 7733))),
        ],
    )
    def test_parse(self, spec, expected):
        assert parse_endpoint(spec) == expected

    @pytest.mark.parametrize("spec", ["", "tcp:nohost", "just-words"])
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_endpoint(spec)


class TestGridValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ProtocolError) as e:
            GridSpec.from_dict(dict(GRID, schemes=["warp-drive"]))
        assert e.value.code == E_BAD_GRID
        assert "warp-drive" in e.value.message

    def test_unknown_workload(self):
        with pytest.raises(ProtocolError) as e:
            GridSpec.from_dict(dict(GRID, workloads=["quake"]))
        assert e.value.code == E_BAD_GRID

    @pytest.mark.parametrize(
        "doc",
        [
            None,
            [],
            {},
            {"schemes": [], "workloads": ["vips"]},
            {"schemes": ["dcw"], "workloads": []},
            {"schemes": ["dcw"], "workloads": ["vips"], "seed": -1},
            {"schemes": ["dcw"], "workloads": ["vips"], "requests_per_core": 0},
            {"schemes": ["dcw"], "workloads": ["vips"], "requests_per_core": True},
            {"schemes": ["dcw"], "workloads": ["vips"], "typo_field": 1},
        ],
    )
    def test_malformed_grids(self, doc):
        with pytest.raises(ProtocolError) as e:
            GridSpec.from_dict(doc)
        assert e.value.code == E_BAD_GRID

    def test_oversized_grid(self):
        doc = {"schemes": ["dcw"] * 70, "workloads": ["vips"] * 70}
        with pytest.raises(ProtocolError) as e:
            GridSpec.from_dict(doc)
        assert e.value.code == E_BAD_GRID
        assert str(MAX_GRID_CELLS) in e.value.message


# ----------------------------------------------------------------------
# Live-socket abuse: structured error or clean close, never a crash.
# ----------------------------------------------------------------------
async def start(tmp_path):
    svc = SweepService(
        state_dir=tmp_path / "state",
        cache=ResultCache(tmp_path / "cache"),
        fsync=False,
    )
    server = await svc.serve_unix(tmp_path / "p.sock")
    return svc, server


async def finish(svc, server):
    server.close()
    await server.wait_closed()
    await svc.shutdown()


async def raw_exchange(sock_path, payload: bytes, n_replies: int = 1):
    """Write raw bytes, read up to ``n_replies`` reply lines, then EOF."""
    reader, writer = await asyncio.open_unix_connection(str(sock_path))
    writer.write(payload)
    await writer.drain()
    replies = []
    for _ in range(n_replies):
        line = await asyncio.wait_for(reader.readline(), 30)
        if not line:
            break
        replies.append(json.loads(line))
    writer.close()
    await writer.wait_closed()
    return replies


def error_code(frame: dict) -> str:
    assert frame["ok"] is False
    return frame["error"]["code"]


def test_malformed_frame_gets_error_and_connection_survives(tmp_path):
    async def run():
        svc, server = await start(tmp_path)
        try:
            ping = encode_frame(request_frame("ping"))
            replies = await raw_exchange(
                tmp_path / "p.sock", b"this is not json\n" + ping, n_replies=2
            )
        finally:
            await finish(svc, server)
        return replies

    replies = asyncio.run(run())
    assert error_code(replies[0]) == E_BAD_FRAME
    assert replies[1]["ok"] and replies[1]["pong"]  # same connection


def test_bad_version_and_unknown_verb_are_structured_errors(tmp_path):
    async def run():
        svc, server = await start(tmp_path)
        try:
            r1 = await raw_exchange(tmp_path / "p.sock", b'{"verb": "ping"}\n')
            r2 = await raw_exchange(
                tmp_path / "p.sock", encode_frame({"v": 1, "verb": "explode"})
            )
            r3 = await raw_exchange(
                tmp_path / "p.sock", encode_frame({"v": 1, "verb": 7})
            )
        finally:
            await finish(svc, server)
        return r1, r2, r3

    r1, r2, r3 = asyncio.run(run())
    assert error_code(r1[0]) == E_BAD_VERSION
    assert error_code(r2[0]) == E_UNKNOWN_VERB
    assert error_code(r3[0]) == E_UNKNOWN_VERB


def test_oversized_frame_errors_then_closes(tmp_path):
    async def run():
        svc, server = await start(tmp_path)
        try:
            reader, writer = await asyncio.open_unix_connection(
                str(tmp_path / "p.sock")
            )
            writer.write(b"x" * (MAX_FRAME_BYTES + 1024) + b"\n")
            await writer.drain()
            reply = json.loads(await asyncio.wait_for(reader.readline(), 30))
            eof = await asyncio.wait_for(reader.readline(), 30)
            writer.close()
            await writer.wait_closed()
            # The server is still alive for new connections.
            after = await raw_exchange(
                tmp_path / "p.sock", encode_frame(request_frame("ping"))
            )
        finally:
            await finish(svc, server)
        return reply, eof, after

    reply, eof, after = asyncio.run(run())
    assert error_code(reply) == E_FRAME_TOO_LARGE
    assert eof == b""  # clean close after the error frame
    assert after[0]["pong"]


def test_truncated_frame_then_disconnect_leaves_server_healthy(tmp_path):
    async def run():
        svc, server = await start(tmp_path)
        try:
            reader, writer = await asyncio.open_unix_connection(
                str(tmp_path / "p.sock")
            )
            writer.write(b'{"v": 1, "verb": "sub')  # no newline: torn frame
            await writer.drain()
            writer.close()  # abrupt disconnect mid-frame
            await writer.wait_closed()
            await asyncio.sleep(0.05)
            after = await raw_exchange(
                tmp_path / "p.sock", encode_frame(request_frame("ping"))
            )
        finally:
            await finish(svc, server)
        return after

    after = asyncio.run(run())
    assert after[0]["pong"]


def test_unknown_job_is_a_structured_error(tmp_path):
    async def run():
        svc, server = await start(tmp_path)
        try:
            out = []
            for verb in ("status", "watch", "cancel"):
                r = await raw_exchange(
                    tmp_path / "p.sock",
                    encode_frame(request_frame(verb, job="j0000000000000000")),
                )
                out.append(r[0])
        finally:
            await finish(svc, server)
        return out

    for reply in asyncio.run(run()):
        assert error_code(reply) == E_UNKNOWN_JOB


def test_abuse_does_not_affect_another_tenants_job(tmp_path):
    async def run():
        svc, server = await start(tmp_path)
        try:
            submit = encode_frame(
                request_frame("submit", tenant="victim", grid=GRID)
            )
            accepted = (await raw_exchange(tmp_path / "p.sock", submit))[0]
            # Attacker hammers the server with garbage while the
            # victim's job runs.
            for payload in (
                b"\x00\xff\xfe garbage\n",
                b'{"v": 1, "verb": "nope"}\n',
                b'{"v": 1}\n',
                b'{"v": 1, "verb": "submit", "grid": {"schemes": 1}}\n',
            ):
                await raw_exchange(tmp_path / "p.sock", payload)
            # Mid-watch disconnect on the victim's own job.
            reader, writer = await asyncio.open_unix_connection(
                str(tmp_path / "p.sock")
            )
            writer.write(
                encode_frame(request_frame("watch", job=accepted["job"]))
            )
            await writer.drain()
            await asyncio.wait_for(reader.readline(), 30)  # snapshot
            writer.close()
            await writer.wait_closed()
            await asyncio.wait_for(svc.scheduler.wait_idle(), 120)
            status = (
                await raw_exchange(
                    tmp_path / "p.sock",
                    encode_frame(request_frame("status", job=accepted["job"])),
                )
            )[0]
        finally:
            await finish(svc, server)
        return status

    status = asyncio.run(run())
    assert status["state"] == "done"
    assert status["done"] == status["total"] == 1
    assert not status["errors"]
