"""Tests for access-pattern generation, config serialization and the
trace-stats CLI command."""

import numpy as np
import pytest

from repro.cli import main
from repro.config import (
    CPUConfig,
    MemCtrlConfig,
    PCMOrganization,
    SystemConfig,
    default_config,
    mobile_config,
)
from repro.experiments.fullsystem import run_fullsystem
from repro.trace.io import save_trace
from repro.trace.synthetic import SyntheticTraceGenerator, generate_trace
from repro.trace.workloads import get_workload


class TestAccessPatterns:
    def test_streaming_walks_sequentially(self):
        t = generate_trace("dedup", 100, pattern="streaming")
        core0 = t.records[t.records["core"] == 0]["line"].astype(np.int64)
        assert (np.diff(core0) == 1).all()

    def test_strided_uses_stride(self):
        t = generate_trace("dedup", 100, pattern="strided", stride=8)
        core0 = t.records[t.records["core"] == 0]["line"].astype(np.int64)
        assert (np.diff(core0) == 8).all()

    def test_stride8_camps_on_one_bank(self):
        t = generate_trace("dedup", 100, pattern="strided", stride=8)
        core0 = t.records[t.records["core"] == 0]["line"]
        assert np.unique(core0 % 8).size == 1

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(get_workload("dedup"), pattern="zigzag")

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(get_workload("dedup"), stride=0)

    def test_bank_camping_hurts_everyone_streaming_helps(self):
        """The pathological stride serializes all writes on one bank;
        streaming spreads them across all eight — the schemes' relative
        ranking is preserved in both regimes."""
        camped = generate_trace("vips", 400, pattern="strided", stride=8, seed=1)
        spread = generate_trace("vips", 400, pattern="streaming", seed=1)
        for scheme in ("dcw", "tetris"):
            r_camped = run_fullsystem(camped, scheme)
            r_spread = run_fullsystem(spread, scheme)
            assert r_camped.runtime_ns > r_spread.runtime_ns, scheme
        # Ranking preserved under pathology.
        assert (
            run_fullsystem(camped, "tetris").runtime_ns
            < run_fullsystem(camped, "dcw").runtime_ns
        )


class TestConfigSerialization:
    def test_roundtrip_default(self):
        cfg = default_config()
        again = SystemConfig.from_json(cfg.to_json())
        assert again == cfg

    def test_roundtrip_modified(self):
        cfg = default_config().replace(
            memctrl=MemCtrlConfig(write_pausing=True, drain_order="sjf"),
            organization=PCMOrganization(num_banks=16, subarrays_per_bank=4),
            cpu=CPUConfig(max_outstanding_reads=4),
            seed=99,
        )
        again = SystemConfig.from_json(cfg.to_json())
        assert again == cfg
        assert again.memctrl.drain_order == "sjf"

    def test_roundtrip_mobile(self):
        cfg = mobile_config(4)
        again = SystemConfig.from_dict(cfg.to_dict())
        assert again == cfg
        assert again.units_per_line == 32

    def test_json_is_sorted_and_readable(self):
        text = default_config().to_json()
        assert '"t_set_ns": 430.0' in text


class TestStatsCommand:
    def test_stats_on_npz(self, tmp_path, capsys):
        trace = generate_trace("ferret", 120, seed=3)
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ferret" in out
        assert "RPKI / WPKI" in out
        assert "Tetris write units" in out
