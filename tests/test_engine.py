"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30.0, fired.append, "c")
        sim.schedule(10.0, fired.append, "a")
        sim.schedule(20.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(5.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(7.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [7.5]
        assert sim.now == 7.5

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(5.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(10.0, outer)
        sim.run()
        assert fired == [("outer", 10.0), ("inner", 15.0)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(5.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(10.0, fired.append, "x")
        ev.cancel()
        sim.run()
        assert fired == []

    def test_pending_ignores_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(10.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        ev.cancel()
        assert sim.pending == 1


class TestRunBounds:
    def test_run_until_stops_the_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "early")
        sim.schedule(100.0, fired.append, "late")
        sim.run(until=50.0)
        assert fired == ["early"]
        assert sim.now == 50.0
        sim.run()
        assert fired == ["early", "late"]

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_events_fired_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_fired == 5

    def test_determinism_across_runs(self):
        def run_once():
            sim = Simulator()
            order = []
            sim.schedule(1.0, lambda: (order.append(1), sim.schedule(0.0, order.append, 2)))
            sim.schedule(1.0, order.append, 3)
            sim.run()
            return order

        assert run_once() == run_once() == [1, 3, 2]
