"""Tests for the run explainer (time attribution)."""

import pytest

from repro.analysis.bottleneck import explain_run, format_breakdown
from repro.experiments.fullsystem import run_fullsystem
from repro.trace.synthetic import generate_trace


@pytest.fixture(scope="module")
def runs():
    trace = generate_trace("dedup", requests_per_core=400, seed=18)
    return {
        scheme: run_fullsystem(trace, scheme) for scheme in ("dcw", "tetris")
    }


class TestExplainRun:
    def test_fractions_valid(self, runs):
        for scheme, res in runs.items():
            for b in explain_run(res):
                total = (
                    b.compute_frac + b.read_block_frac
                    + b.read_slot_frac + b.write_slot_frac
                )
                assert 0.0 <= total <= 1.0 + 1e-9, scheme
                assert b.runtime_ns > 0

    def test_memory_bound_shrinks_under_tetris(self, runs):
        """The causal chain: faster writes -> less read blocking."""
        dcw = explain_run(runs["dcw"])
        tet = explain_run(runs["tetris"])
        dcw_mem = sum(b.memory_bound_frac for b in dcw) / len(dcw)
        tet_mem = sum(b.memory_bound_frac for b in tet) / len(tet)
        assert tet_mem < dcw_mem

    def test_compute_time_scheme_invariant(self, runs):
        """Absolute compute time is the trace's instruction work — it
        must not depend on the memory scheme."""
        for dcw_b, tet_b in zip(explain_run(runs["dcw"]), explain_run(runs["tetris"])):
            dcw_compute = dcw_b.compute_frac * dcw_b.runtime_ns
            tet_compute = tet_b.compute_frac * tet_b.runtime_ns
            assert tet_compute == pytest.approx(dcw_compute, rel=0.05)

    def test_format_contains_memory_summary(self, runs):
        text = format_breakdown(runs["tetris"])
        assert "Time attribution" in text
        assert "bank utilization" in text
        assert "core" in text

    def test_empty_core_handled(self):
        trace = generate_trace("dedup", requests_per_core=20, seed=1, num_cores=1)
        res = run_fullsystem(trace, "dcw")
        breakdown = explain_run(res)
        # Cores 1-3 had no records: zeroed breakdowns, no crash.
        assert len(breakdown) == 4
