"""repro.obs: tracer ring buffer, clock domains, exporters, and the
no-perturbation guarantee (docs/OBSERVABILITY.md).

The two contracts the subsystem lives or dies by:

* a trace is a pure function of the seed (same seed ⇒ byte-identical
  Chrome trace JSON and metric export), and
* recording one changes nothing — a traced run's simulation outcomes
  are bit-identical to an untraced run's.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import TraceConfig, default_config
from repro.obs import (
    ManualClock,
    MetricRegistry,
    SimClock,
    Tracer,
    WallClock,
    chrome_trace,
    collapsed_stacks,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.runtime import active_tracer, tracer_for, tracing
from repro.experiments.obs_demo import (
    fsm_overlap_ns,
    run_traced_fullsystem,
    run_traced_writes,
)

SEED = 20160816


# ----------------------------------------------------------------------
# Ring buffer.
# ----------------------------------------------------------------------
class TestRingBuffer:
    def test_events_in_order_below_capacity(self):
        tr = Tracer(capacity=8)
        for i in range(5):
            tr.instant(f"e{i}", ts_ns=float(i))
        assert [ev.name for ev in tr.events()] == [f"e{i}" for i in range(5)]
        assert tr.recorded == 5 and tr.dropped == 0 and len(tr) == 5

    def test_wraparound_keeps_newest_oldest_first(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            tr.instant(f"e{i}", ts_ns=float(i))
        assert [ev.name for ev in tr.events()] == ["e6", "e7", "e8", "e9"]
        assert tr.recorded == 10 and tr.dropped == 6 and len(tr) == 4

    def test_seq_stays_monotone_across_wraps(self):
        tr = Tracer(capacity=3)
        for i in range(7):
            tr.instant("e", ts_ns=0.0)
        seqs = [ev.seq for ev in tr.events()]
        assert seqs == sorted(seqs) and seqs == [4, 5, 6]

    def test_clear_resets_but_keeps_capacity(self):
        tr = Tracer(capacity=4)
        tr.instant("e")
        tr.clear()
        assert tr.events() == [] and tr.recorded == 0
        assert tr.capacity == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


# ----------------------------------------------------------------------
# Clock domains.
# ----------------------------------------------------------------------
class TestClocks:
    def test_manual_clock_advances_and_rejects_backwards(self):
        clk = ManualClock(100.0)
        assert clk.now_ns() == 100.0
        clk.advance(30.0)
        assert clk.now_ns() == 130.0
        with pytest.raises(ValueError):
            clk.advance(-1.0)

    def test_sim_clock_reads_the_des_now(self):
        class FakeSim:
            now = 0.0

        sim = FakeSim()
        clk = SimClock(sim)
        assert clk.now_ns() == 0.0
        sim.now = 275.5
        assert clk.now_ns() == 275.5
        assert clk.domain == "sim"

    def test_wall_clock_is_relative_and_monotone(self):
        clk = WallClock()
        a = clk.now_ns()
        b = clk.now_ns()
        assert 0.0 <= a <= b
        assert clk.domain == "wall"

    def test_tracer_stamps_from_its_clock_by_default(self):
        clk = ManualClock(42.0)
        tr = Tracer(capacity=4, clock=clk)
        tr.instant("auto")
        tr.complete("span", dur_ns=5.0)
        assert all(ev.ts_ns == pytest.approx(42.0) for ev in tr.events())

    def test_bind_clock_rebases_subsequent_events(self):
        tr = Tracer(capacity=4, clock=ManualClock(0.0))
        tr.instant("before")
        tr.bind_clock(ManualClock(1000.0))
        tr.instant("after")
        before, after = tr.events()
        assert before.ts_ns == pytest.approx(0.0)
        assert after.ts_ns == pytest.approx(1000.0)


# ----------------------------------------------------------------------
# Runtime resolution.
# ----------------------------------------------------------------------
class TestRuntime:
    def test_tracer_for_is_none_when_disabled(self):
        assert tracer_for(default_config()) is None
        assert tracer_for(None) is None

    def test_tracing_context_restores_previous(self):
        assert active_tracer() is None
        with tracing() as tr:
            assert active_tracer() is tr
            cfg = default_config().replace(trace=TraceConfig(enabled=True))
            assert tracer_for(cfg) is tr
        assert active_tracer() is None


# ----------------------------------------------------------------------
# Chrome trace export: schema validity.
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_traced_writes_export_is_schema_valid(self, tmp_path):
        tracer, outcomes = run_traced_writes("tetris", n_writes=8, seed=SEED)
        assert len(outcomes) == 8 and tracer.recorded > 0
        path = tmp_path / "trace.json"
        obj = write_chrome_trace(tracer, path)
        assert validate_chrome_trace(obj, require_nonempty=True) == []
        # The file round-trips as plain JSON.
        assert json.loads(path.read_text()) == obj
        assert obj["displayTimeUnit"] == "ns"

    def test_ids_are_interned_integers_with_metadata(self):
        tr = Tracer(capacity=16)
        tr.complete("w", ts_ns=0.0, dur_ns=10.0, pid="bank0.chip1", tid="FSM1")
        tr.instant("i", ts_ns=5.0, pid="bank0.chip1", tid="FSM1")
        tr.counter("depth", 3.0, ts_ns=0.0, pid="memctrl")
        obj = chrome_trace(tr)
        meta = [e for e in obj["traceEvents"] if e["ph"] == "M"]
        payload = [e for e in obj["traceEvents"] if e["ph"] != "M"]
        names = {
            (e["name"], e["args"]["name"]) for e in meta
        }
        assert ("process_name", "bank0.chip1") in names
        assert ("process_name", "memctrl") in names
        assert ("thread_name", "FSM1") in names
        assert all(isinstance(e["pid"], int) and e["pid"] >= 1 for e in payload)
        counter = next(e for e in payload if e["ph"] == "C")
        assert counter["tid"] == 0 and counter["args"] == {"depth": 3.0}

    def test_validator_flags_straddling_spans(self):
        tr = Tracer(capacity=8)
        tr.complete("outer", ts_ns=0.0, dur_ns=100.0, pid="p", tid="t")
        tr.complete("straddler", ts_ns=50.0, dur_ns=100.0, pid="p", tid="t")
        problems = validate_chrome_trace(chrome_trace(tr))
        assert any("straddles" in p for p in problems)

    def test_validator_flags_missing_fields_and_empty(self):
        assert validate_chrome_trace({}) != []
        obj = {"traceEvents": [{"ph": "X", "name": "x"}]}
        problems = validate_chrome_trace(obj)
        assert any("missing" in p for p in problems)
        empty = {"traceEvents": []}
        assert validate_chrome_trace(empty) == []
        assert validate_chrome_trace(empty, require_nonempty=True) != []

    def test_flamegraph_lines_carry_lane_prefixed_stacks(self):
        tr = Tracer(capacity=8)
        tr.complete("outer", ts_ns=0.0, dur_ns=100.0, pid="p", tid="t")
        tr.complete("inner", ts_ns=10.0, dur_ns=30.0, pid="p", tid="t")
        text = collapsed_stacks(tr)
        assert "p;t;outer 70\n" in text
        assert "p;t;outer;inner 30\n" in text


# ----------------------------------------------------------------------
# Determinism: same seed ⇒ identical trace and metric exports.
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_trace_and_metrics_reproduce_under_fixed_seed(self):
        a_tracer, _ = run_traced_writes("tetris", n_writes=12, seed=SEED)
        b_tracer, _ = run_traced_writes("tetris", n_writes=12, seed=SEED)
        a = json.dumps(chrome_trace(a_tracer), sort_keys=True)
        b = json.dumps(chrome_trace(b_tracer), sort_keys=True)
        assert a == b
        assert a_tracer.metrics.to_json() == b_tracer.metrics.to_json()
        assert collapsed_stacks(a_tracer) == collapsed_stacks(b_tracer)

    def test_different_seeds_differ(self):
        a_tracer, _ = run_traced_writes("tetris", n_writes=12, seed=SEED)
        b_tracer, _ = run_traced_writes("tetris", n_writes=12, seed=SEED + 1)
        assert json.dumps(chrome_trace(a_tracer)) != json.dumps(
            chrome_trace(b_tracer)
        )


# ----------------------------------------------------------------------
# No perturbation: tracing must not change simulation outcomes.
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_scheme_comparison_identical_with_and_without_tracing(self):
        """One full scheme comparison (tetris vs the DCW baseline) run
        untraced, with tracing present-but-disabled, and with tracing
        recording must produce field-identical results."""
        from repro.experiments.runner import run_schemes_on_workloads

        def comparison(cfg):
            return run_schemes_on_workloads(
                ("dcw", "tetris"),
                ("dedup",),
                config=cfg,
                requests_per_core=150,
                seed=SEED,
            )

        baseline = comparison(default_config())
        disabled = comparison(
            default_config().replace(trace=TraceConfig(enabled=False))
        )
        with tracing(Tracer(capacity=1 << 14)):
            recorded = comparison(
                default_config().replace(trace=TraceConfig(enabled=True))
            )
        assert active_tracer() is None

        rows = lambda results: [dataclasses.asdict(r) for r in results]
        assert rows(disabled) == rows(baseline)
        assert rows(recorded) == rows(baseline)


# ----------------------------------------------------------------------
# The acceptance criterion: visible FSM0/FSM1 overlap.
# ----------------------------------------------------------------------
class TestFsmOverlap:
    def test_traced_writes_show_write_unit_overlap_on_a_chip(self):
        tracer, _ = run_traced_writes("tetris", n_writes=32, seed=SEED)
        overlap = fsm_overlap_ns(tracer)
        chip_lanes = {p: ns for p, ns in overlap.items() if ".chip" in p}
        assert chip_lanes, "no chip FSM lanes in the trace"
        assert max(chip_lanes.values()) > 0.0, (
            "tetris trace shows no FSM1/FSM0 overlap on any chip"
        )

    def test_fullsystem_trace_is_valid_and_overlapping(self, tmp_path):
        tracer, result = run_traced_fullsystem(
            "dedup", scheme_name="tetris", requests_per_core=60, seed=SEED
        )
        assert result.events > 0
        path = tmp_path / "fullsystem.json"
        obj = write_chrome_trace(tracer, path)
        assert validate_chrome_trace(obj, require_nonempty=True) == []
        overlap = fsm_overlap_ns(tracer)
        assert any(ns > 0.0 for p, ns in overlap.items() if ".chip" in p)
