"""Integration tests for the event-driven memory controller."""

import pytest

from repro.config import MemCtrlConfig, default_config
from repro.memctrl.controller import MemoryController
from repro.memctrl.request import MemRequest, ReqKind
from repro.sim.engine import Simulator


class FlatService:
    """Constant-cost service model for controller-focused tests."""

    def __init__(self, read=50.0, write=500.0):
        self.read = read
        self.write = write

    def read_ns(self, req):
        return self.read

    def write_ns(self, req):
        return self.write


def make_controller(sim, *, write=500.0, forwarding=True, **mc_kwargs):
    cfg = default_config()
    if mc_kwargs:
        cfg = cfg.replace(memctrl=MemCtrlConfig(**mc_kwargs))
    return MemoryController(
        sim, cfg, FlatService(write=write), enable_forwarding=forwarding
    )


def read_req(i, line=0, done=None):
    return MemRequest(
        req_id=i, kind=ReqKind.READ, core=0, line=line, bank=line % 8, on_done=done
    )


def write_req(i, line=0, write_idx=0):
    return MemRequest(
        req_id=i, kind=ReqKind.WRITE, core=0, line=line, bank=line % 8,
        write_idx=write_idx,
    )


class TestReads:
    def test_single_read_latency(self):
        sim = Simulator()
        ctrl = make_controller(sim)
        done = []
        assert ctrl.submit(read_req(1, done=done.append))
        sim.run()
        assert len(done) == 1
        assert done[0].latency_ns == pytest.approx(50.0)

    def test_same_bank_reads_serialize(self):
        sim = Simulator()
        ctrl = make_controller(sim)
        done = []
        ctrl.submit(read_req(1, line=0, done=done.append))
        ctrl.submit(read_req(2, line=8, done=done.append))  # same bank 0
        sim.run()
        assert done[0].finish_ns == pytest.approx(50.0)
        assert done[1].finish_ns == pytest.approx(100.0)

    def test_different_banks_parallel(self):
        sim = Simulator()
        ctrl = make_controller(sim)
        done = []
        ctrl.submit(read_req(1, line=0, done=done.append))
        ctrl.submit(read_req(2, line=1, done=done.append))
        sim.run()
        assert done[0].finish_ns == pytest.approx(50.0)
        assert done[1].finish_ns == pytest.approx(50.0)

    def test_read_queue_backpressure(self):
        sim = Simulator()
        ctrl = make_controller(
            sim, read_queue_entries=2, write_queue_entries=2,
            drain_high_watermark=2, drain_low_watermark=0,
        )
        # Fill the queue before the simulator runs: all target bank 0.
        assert ctrl.submit(read_req(1, line=0))
        assert ctrl.submit(read_req(2, line=8))
        assert not ctrl.submit(read_req(3, line=16))
        assert ctrl.stats.read_stalls == 1


class TestWriteDrain:
    def test_writes_wait_for_watermark(self):
        sim = Simulator()
        ctrl = make_controller(
            sim, drain_high_watermark=3, drain_low_watermark=0,
            opportunistic_drain=False,
        )
        ctrl.submit(write_req(1, line=0))
        sim.run()
        assert ctrl.stats.write_latency.count == 0   # still parked
        ctrl.submit(write_req(2, line=8))
        ctrl.submit(write_req(3, line=16))           # hits the watermark
        sim.run()
        assert ctrl.stats.write_latency.count == 3

    def test_flush_writes_drains_everything(self):
        sim = Simulator()
        ctrl = make_controller(sim, opportunistic_drain=False)
        ctrl.submit(write_req(1, line=0))
        sim.run()
        assert not ctrl.idle
        ctrl.flush_writes()
        sim.run()
        assert ctrl.idle
        assert ctrl.stats.write_latency.count == 1

    def test_write_queue_backpressure_and_waiter(self):
        sim = Simulator()
        ctrl = make_controller(
            sim, write_queue_entries=1, drain_high_watermark=1,
            drain_low_watermark=0, opportunistic_drain=False,
        )
        assert ctrl.submit(write_req(1, line=0))
        assert not ctrl.submit(write_req(2, line=8))
        woken = []
        ctrl.stall_until_write_slot(lambda: woken.append(True))
        sim.run()
        assert woken == [True]

    def test_drain_blocks_reads_on_same_bank(self):
        sim = Simulator()
        ctrl = make_controller(
            sim, write=1000.0, drain_high_watermark=2, drain_low_watermark=0,
            opportunistic_drain=False,
        )
        done = []
        ctrl.submit(write_req(1, line=0))
        ctrl.submit(write_req(2, line=8))  # drain starts (both bank 0)
        ctrl.submit(read_req(3, line=16, done=done.append))
        sim.run()
        # The read waited behind both 1000 ns writes.
        assert done[0].latency_ns == pytest.approx(2050.0)


class TestForwarding:
    def test_read_hits_pending_write(self):
        sim = Simulator()
        ctrl = make_controller(sim, forwarding=True, opportunistic_drain=False)
        ctrl.submit(write_req(1, line=5))
        done = []
        ctrl.submit(read_req(2, line=5, done=done.append))
        sim.run()
        assert done and done[0].forwarded
        assert done[0].latency_ns == pytest.approx(1.0)
        assert ctrl.stats.forwarded_reads == 1

    def test_forwarding_disabled(self):
        sim = Simulator()
        ctrl = make_controller(sim, forwarding=False)
        ctrl.submit(write_req(1, line=5))
        done = []
        ctrl.submit(read_req(2, line=5, done=done.append))
        ctrl.flush_writes()
        sim.run()
        assert done and not done[0].forwarded


class TestAccounting:
    def test_bank_busy_time(self):
        sim = Simulator()
        ctrl = make_controller(sim)
        ctrl.submit(read_req(1, line=0))
        ctrl.submit(read_req(2, line=0))
        sim.run()
        assert ctrl.stats.bank_busy_ns[0] == pytest.approx(100.0)

    def test_negative_service_rejected(self):
        class Broken:
            def read_ns(self, req):
                return -1.0

            def write_ns(self, req):
                return -1.0

        sim = Simulator()
        ctrl = MemoryController(sim, default_config(), Broken())
        ctrl.submit(read_req(1))
        with pytest.raises(ValueError):
            sim.run()

    def test_queue_wait_recorded(self):
        sim = Simulator()
        ctrl = make_controller(sim)
        ctrl.submit(read_req(1, line=0))
        ctrl.submit(read_req(2, line=8))
        sim.run()
        assert ctrl.stats.read_wait.max == pytest.approx(50.0)
