"""Runtime invariant verifier: violations fire, clean runs stay clean.

Corruption cases are hand-built :class:`TetrisSchedule` objects that
bypass the scheduler's own ``validate()`` — exactly the situation the
verifier exists for: a future refactor producing structurally plausible
but physically impossible schedules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import default_config
from repro.core.analysis import TetrisScheduler
from repro.core.schedule import ScheduledOp, TetrisSchedule
from repro.pcm.state import LineState
from repro.schemes.base import WriteOutcome, get_scheme
from repro.verify import (
    InvariantViolation,
    env_enabled,
    runtime_verification_enabled,
    verify_outcome,
    verify_schedule,
)

K, L, BUDGET = 8, 2.0, 128.0


def make_valid_schedule(n_set=(30, 20, 10), n_reset=(5, 3, 0)):
    sched = TetrisScheduler(K, L, BUDGET).schedule(
        np.array(n_set), np.array(n_reset)
    )
    return sched, np.array(n_set), np.array(n_reset)


# ----------------------------------------------------------------------
# Clean schedules and outcomes pass.
# ----------------------------------------------------------------------
def test_valid_schedule_passes_all_checks():
    sched, n_set, n_reset = make_valid_schedule()
    verify_schedule(
        sched, n_set=n_set, n_reset=n_reset, L=L, units=sched.service_units()
    )


def test_valid_outcome_passes_with_state_diff():
    before = np.array([0b1100, 0b0011], dtype=np.uint64)
    after = np.array([0b1010, 0b0011], dtype=np.uint64)
    outcome = WriteOutcome(
        service_ns=50.0 + 102.5 + 2 * 430.0,
        units=2.0,
        read_ns=50.0,
        analysis_ns=102.5,
        n_set=1,
        n_reset=1,
        energy=1.0,
    )
    verify_outcome(
        outcome, t_set_ns=430.0, state_before=before, state_after=after
    )


# ----------------------------------------------------------------------
# Hand-corrupted schedules raise, with the offending slot/unit attached.
# ----------------------------------------------------------------------
def test_budget_overflow_raises():
    sched = TetrisSchedule(K=K, power_budget=BUDGET, result=1)
    sched.write1_queue.append(
        ScheduledOp(unit=0, kind="write1", slot=0, current=BUDGET + 1, n_bits=129)
    )
    with pytest.raises(InvariantViolation) as exc:
        verify_schedule(sched)
    assert exc.value.kind == "power_budget"
    assert exc.value.context["slot"] == 0
    assert exc.value.context["current"] > BUDGET


def test_double_scheduled_unit_raises():
    sched, n_set, n_reset = make_valid_schedule()
    sched.write0_queue.append(sched.write0_queue[0])
    with pytest.raises(InvariantViolation) as exc:
        verify_schedule(sched)
    assert exc.value.kind == "duplicate_burst"
    assert exc.value.context["unit"] == sched.write0_queue[0].unit


def test_missing_burst_breaks_cell_accounting():
    sched, n_set, n_reset = make_valid_schedule()
    dropped = sched.write1_queue.pop()
    with pytest.raises(InvariantViolation) as exc:
        verify_schedule(sched, n_set=n_set, n_reset=n_reset, L=L)
    assert exc.value.kind == "cell_accounting"
    assert exc.value.context["unit"] == dropped.unit


def test_wrong_units_raises():
    sched, *_ = make_valid_schedule()
    with pytest.raises(InvariantViolation) as exc:
        verify_schedule(sched, units=sched.service_units() + 0.5)
    assert exc.value.kind == "units_mismatch"


def test_corrupted_result_breaks_equation5_consistency():
    sched, *_ = make_valid_schedule()
    reported = sched.service_units()
    sched.result += 1  # "one phantom write unit"
    with pytest.raises(InvariantViolation) as exc:
        verify_schedule(sched, units=reported)
    assert exc.value.kind == "units_mismatch"


def test_out_of_range_slot_raises():
    sched = TetrisSchedule(K=K, power_budget=BUDGET, result=1)
    sched.write1_queue.append(
        ScheduledOp(unit=0, kind="write1", slot=3, current=1.0, n_bits=1)
    )
    with pytest.raises(InvariantViolation) as exc:
        verify_schedule(sched)
    assert exc.value.kind == "slot_range"
    assert exc.value.context["slot"] == 3


# ----------------------------------------------------------------------
# Outcome violations.
# ----------------------------------------------------------------------
def outcome(**overrides):
    base = dict(
        service_ns=532.5,
        units=1.0,
        read_ns=50.0,
        analysis_ns=52.5,
        n_set=4,
        n_reset=4,
        energy=1.0,
    )
    base.update(overrides)
    return WriteOutcome(**base)


def test_negative_component_raises():
    with pytest.raises(InvariantViolation) as exc:
        verify_outcome(outcome(energy=-0.5))
    assert exc.value.kind == "negative_component"
    assert exc.value.context["attr"] == "energy"


def test_service_smaller_than_overheads_raises():
    with pytest.raises(InvariantViolation) as exc:
        verify_outcome(outcome(service_ns=10.0))
    assert exc.value.kind == "service_decomposition"


def test_service_decomposition_against_t_set():
    with pytest.raises(InvariantViolation) as exc:
        verify_outcome(outcome(), t_set_ns=400.0)  # 50+52.5+400 != 532.5
    assert exc.value.kind == "service_decomposition"
    verify_outcome(outcome(service_ns=102.5 + 430.0), t_set_ns=430.0)


def test_state_diff_mismatch_raises():
    before = np.zeros(2, dtype=np.uint64)
    after = np.array([0b111, 0], dtype=np.uint64)  # 3 SETs, 0 RESETs
    with pytest.raises(InvariantViolation) as exc:
        verify_outcome(
            outcome(n_set=5, n_reset=0, service_ns=1000.0),
            state_before=before,
            state_after=after,
        )
    assert exc.value.kind == "state_diff"
    assert exc.value.context == dict(
        attr="n_set", reported=5, image_cells=3, allowed_extra=0
    )


def test_state_diff_allows_flip_tag_slack():
    before = np.zeros(1, dtype=np.uint64)
    after = np.array([0b1], dtype=np.uint64)
    good = outcome(n_set=2, n_reset=0, service_ns=1000.0)
    verify_outcome(
        good, state_before=before, state_after=after,
        exact_cells=False, max_extra_cells=1,
    )
    with pytest.raises(InvariantViolation):
        verify_outcome(
            outcome(n_set=3, n_reset=0, service_ns=1000.0),
            state_before=before, state_after=after,
            exact_cells=False, max_extra_cells=1,
        )


# ----------------------------------------------------------------------
# Enablement plumbing.
# ----------------------------------------------------------------------
def test_env_flag_parsing(monkeypatch):
    for value, expect in [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("off", False),
    ]:
        monkeypatch.setenv("REPRO_VERIFY", value)
        assert env_enabled() is expect
    monkeypatch.delenv("REPRO_VERIFY")
    assert env_enabled() is False


def test_config_flag_enables_without_env(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    assert runtime_verification_enabled(default_config()) is False
    cfg = default_config(verify_invariants=True)
    assert runtime_verification_enabled(cfg) is True
    assert get_scheme("tetris", cfg).verify is True
    assert get_scheme("tetris").verify is False


# ----------------------------------------------------------------------
# End to end: a scheme whose scheduler goes rogue is caught mid-write.
# ----------------------------------------------------------------------
class _RogueScheduler:
    """Stub returning a schedule that double-books a power slot."""

    def __init__(self, inner):
        self.inner = inner
        self.K = inner.K
        self.L = inner.L
        self.power_budget = inner.power_budget

    def schedule(self, n_set, n_reset):
        sched = TetrisSchedule(K=self.K, power_budget=self.power_budget, result=1)
        sched.write1_queue.append(
            ScheduledOp(
                unit=0, kind="write1", slot=0,
                current=self.power_budget * 2, n_bits=int(self.power_budget * 2),
            )
        )
        return sched


def test_tetris_write_catches_rogue_schedule():
    scheme = get_scheme("tetris", default_config(verify_invariants=True))
    scheme.scheduler = _RogueScheduler(scheme.scheduler)
    state = LineState.from_logical(np.zeros(8, dtype=np.uint64))
    new = np.full(8, 0xFFFF, dtype=np.uint64)
    with pytest.raises(InvariantViolation) as exc:
        scheme.write(state, new)
    assert exc.value.kind == "power_budget"


def test_tetris_write_verified_run_matches_unverified(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    rng = np.random.default_rng(42)
    lines = rng.integers(0, 2**63, size=(20, 8), dtype=np.uint64)
    results = []
    for flag in (False, True):
        scheme = get_scheme("tetris", default_config(verify_invariants=flag))
        state = LineState.from_logical(lines[0])
        outs = [scheme.write(state, row) for row in lines[1:]]
        results.append([(o.units, o.n_set, o.n_reset) for o in outs])
    assert results[0] == results[1]
