"""The differential oracle: analytic models, harness, fixtures, ledger.

Four layers of checks:

1. the *independent* analytic models agree with the closed forms the
   config module derives (Eqs. 1-4) and with the production scheduler on
   exhaustive small grids (Eq. 5), across K in {4, 8, 16};
2. the differential and metamorphic harnesses run clean end-to-end;
3. every pinned regression fixture in ``tests/fixtures/oracle/``
   reproduces its expected schedule (these encode the chunk-split and
   zero-demand bugs this harness originally surfaced);
4. the paper-claims ledger matches the live configuration.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.config import PCMTimings, default_config, theoretical_write_units
from repro.core.analysis import ScheduleError, TetrisScheduler
from repro.core.schedule import ScheduledOp, TetrisSchedule
from repro.oracle import analytic
from repro.oracle.differential import (
    des_execute_phases,
    des_execute_schedule,
    generate_vectors,
    run_differential,
)
from repro.oracle.metamorphic import run_metamorphic
from repro.oracle.paper_claims import CLAIMS, RANKINGS, band, check, expect
from repro.pcm.state import LineState
from repro.schemes import SCHEME_REGISTRY, get_scheme
from repro.verify.invariants import verify_schedule

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "oracle"

#: t_reset values giving K = floor(430 / t_reset) in {4, 8, 16}.
K_TIMINGS = {4: 107.5, 8: 53.75, 16: 26.875}


# ----------------------------------------------------------------------
# Layer 1: the analytic models themselves.
# ----------------------------------------------------------------------
class TestAnalyticClosedForms:
    def test_eq1_to_eq4_match_config_derivation(self):
        cfg = default_config()
        point = analytic.OperatingPoint.from_config(cfg)
        theory = theoretical_write_units(cfg)
        assert analytic.conventional_units(point) == theory["conventional"]
        assert analytic.dcw_units(point) == theory["dcw"]
        assert analytic.flip_n_write_units(point) == theory["flip_n_write"]
        assert analytic.two_stage_units(point) == pytest.approx(
            theory["two_stage"]
        )
        assert analytic.three_stage_units(point) == pytest.approx(
            theory["three_stage"]
        )

    def test_paper_point_values(self):
        point = analytic.OperatingPoint()
        assert analytic.conventional_units(point) == 8.0
        assert analytic.flip_n_write_units(point) == 4.0
        assert analytic.two_stage_units(point) == pytest.approx(3.0)
        assert analytic.three_stage_units(point) == pytest.approx(2.5)

    @pytest.mark.parametrize("k", sorted(K_TIMINGS))
    def test_worst_case_units_match_schemes(self, k):
        cfg = default_config(timings=PCMTimings(t_reset_ns=K_TIMINGS[k]))
        assert cfg.K == k
        point = analytic.OperatingPoint.from_config(cfg)
        for name in sorted(SCHEME_REGISTRY):
            scheme = get_scheme(name, cfg)
            assert analytic.worst_case_units(name, point) == pytest.approx(
                scheme.worst_case_units()
            ), name

    def test_pack_rejects_mismatched_vectors(self):
        point = analytic.OperatingPoint()
        with pytest.raises(ValueError):
            analytic.tetris_pack([1, 2], [1], point)

    def test_operating_point_validation(self):
        with pytest.raises(ValueError):
            analytic.OperatingPoint(K=0)
        with pytest.raises(ValueError):
            analytic.OperatingPoint(budget=-1.0)

    def test_scheme_units_unknown_scheme(self):
        with pytest.raises(KeyError):
            analytic.scheme_units("nope", analytic.OperatingPoint())


class TestEq5AgainstScheduler:
    """The independent Algorithm-2 packer vs the production scheduler."""

    @pytest.mark.parametrize("k", sorted(K_TIMINGS))
    def test_exhaustive_small_grid(self, k):
        point = analytic.OperatingPoint(K=k, L=2.0, budget=6.0)
        scheduler = TetrisScheduler(k, 2.0, 6.0, allow_split=True)
        for s0 in range(5):
            for s1 in range(5):
                for r0 in range(5):
                    for r1 in range(5):
                        n_set = np.array([s0, s1], dtype=np.int64)
                        n_reset = np.array([r0, r1], dtype=np.int64)
                        sched = scheduler.schedule(n_set, n_reset)
                        a = analytic.tetris_pack([s0, s1], [r0, r1], point)
                        assert (sched.result, sched.subresult) == a, (
                            n_set, n_reset,
                        )

    @pytest.mark.parametrize("k", sorted(K_TIMINGS))
    def test_fractional_subresult_boundaries(self, k):
        """Eq. 5's ``subresult / K`` term at non-integer boundaries.

        RESET-only demand forcing ``subresult % K != 0``: the write-stage
        length must be the exact fraction, not a rounded unit count.
        """
        point = analytic.OperatingPoint(K=k, L=2.0, budget=4.0)
        scheduler = TetrisScheduler(k, 2.0, 4.0, allow_split=True)
        hit_fractional = False
        for total in range(1, 3 * k + 2):
            n_set = np.zeros(4, dtype=np.int64)
            n_reset = np.zeros(4, dtype=np.int64)
            n_reset[0] = total
            sched = scheduler.schedule(n_set, n_reset)
            expected = analytic.tetris_units([0] * 4, n_reset.tolist(), point)
            assert sched.service_units() == pytest.approx(expected)
            assert sched.subresult == total // 2 + total % 2
            if sched.subresult % k != 0:
                hit_fractional = True
                frac = sched.service_units() - int(sched.service_units())
                assert frac == pytest.approx((sched.subresult % k) / k)
        assert hit_fractional

    def test_relaxed_packer_agrees_with_generalized(self):
        from repro.core.generalized import BurstClass, GeneralizedScheduler

        point = analytic.OperatingPoint(K=8, L=2.0, budget=16.0)
        gs = GeneralizedScheduler(16.0, 430.0 / 8)
        w1 = BurstClass("write1", 8, 1.0)
        w0 = BurstClass("write0", 1, 2.0)
        rng = np.random.default_rng(7)
        for _ in range(50):
            n_set = rng.integers(0, 20, size=8)
            n_reset = rng.integers(0, 20, size=8)
            got = gs.schedule({w1: n_set, w0: n_reset}).total_subslots
            want = analytic.tetris_relaxed_subslots(
                n_set.tolist(), n_reset.tolist(), point
            )
            assert got == want, (n_set, n_reset)


# ----------------------------------------------------------------------
# Layer 2: the harnesses end to end.
# ----------------------------------------------------------------------
class TestDifferentialHarness:
    def test_smoke_run_zero_divergences(self):
        report = run_differential(cases=60, seed=3)
        assert report.ok, [d.to_dict() for d in report.divergences]
        assert report.cases > 0
        assert set(report.schemes) == set(SCHEME_REGISTRY)
        doc = report.to_dict()
        assert doc["ok"] is True and doc["divergences"] == []

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            run_differential(["nope"], cases=4)

    def test_metamorphic_smoke(self):
        result = run_metamorphic(trials=60, seed=4)
        assert result["ok"], result["violations"]

    def test_generated_vectors_cover_corners(self):
        rng = np.random.default_rng(0)
        vectors = generate_vectors(
            rng, units=8, max_per_unit=32, K=8, L=2.0, budget=6.0,
            n_random=5,
        )
        has_zero = any(
            not s.any() and not r.any() for s, r in vectors
        )
        has_set_only = any(s.any() and not r.any() for s, r in vectors)
        has_reset_only = any(not s.any() and r.any() for s, r in vectors)
        has_over_budget = any(
            float(max(s.max(initial=0) * 1.0, r.max(initial=0) * 2.0)) > 6.0
            for s, r in vectors
        )
        assert has_zero and has_set_only and has_reset_only and has_over_budget

    def test_des_replay_matches_eq5(self):
        scheduler = TetrisScheduler(8, 2.0, 16.0, allow_split=True)
        rng = np.random.default_rng(5)
        for _ in range(25):
            n_set = rng.integers(0, 24, size=8)
            n_reset = rng.integers(0, 24, size=8)
            sched = scheduler.schedule(n_set, n_reset)
            executed = des_execute_schedule(sched, 430.0)
            assert executed == pytest.approx(sched.service_time_ns(430.0))

    def test_des_replay_empty_schedule_is_zero(self):
        sched = TetrisSchedule(K=8, power_budget=128.0)
        assert des_execute_schedule(sched, 430.0) == 0.0

    def test_des_phases_chain(self):
        assert des_execute_phases([50.0, 102.5, 430.0]) == pytest.approx(582.5)
        assert des_execute_phases([]) == 0.0
        assert des_execute_phases([0.0, 0.0]) == 0.0


# ----------------------------------------------------------------------
# Layer 3: pinned regression fixtures (the bugs this harness surfaced).
# ----------------------------------------------------------------------
def _fixture_files() -> list[Path]:
    return sorted(FIXTURES.glob("*.json"))


def test_fixture_directory_is_populated():
    names = {p.stem for p in _fixture_files()}
    assert {
        "chunk_split_conservation",
        "chunk_split_zero_bit",
        "chunk_split_phantom_capacity",
        "zero_demand",
    } <= names


@pytest.mark.parametrize("path", _fixture_files(), ids=lambda p: p.stem)
def test_regression_fixture(path):
    doc = json.loads(path.read_text())
    pt = doc["point"]
    n_set = np.array(doc["n_set"], dtype=np.int64)
    n_reset = np.array(doc["n_reset"], dtype=np.int64)
    scheduler = TetrisScheduler(
        pt["K"], pt["L"], pt["budget"], allow_split=True
    )
    sched = scheduler.schedule(n_set, n_reset)
    expect_doc = doc["expect"]
    assert sched.result == expect_doc["result"], doc["description"]
    assert sched.subresult == expect_doc["subresult"], doc["description"]
    bits = sorted(op.n_bits for op in sched.write0_queue)
    assert bits == expect_doc["write0_bits_sorted"], doc["description"]
    assert sum(bits) == expect_doc["write0_bits_sum"] == int(n_reset.sum())
    # The independent packer, the invariant checker and the DES replay
    # all agree on the fixed behavior.
    point = analytic.OperatingPoint(
        K=pt["K"], L=pt["L"], budget=pt["budget"]
    )
    assert (sched.result, sched.subresult) == analytic.tetris_pack(
        n_set.tolist(), n_reset.tolist(), point
    )
    verify_schedule(
        sched, n_set=n_set, n_reset=n_reset, L=pt["L"],
        units=sched.service_units(),
    )
    assert des_execute_schedule(sched, 430.0) == pytest.approx(
        sched.service_time_ns(430.0)
    )


# ----------------------------------------------------------------------
# Satellite regressions: memo immutability and the zero-demand corner.
# ----------------------------------------------------------------------
class TestMemoImmutability:
    def test_mutating_a_result_does_not_corrupt_the_memo(self):
        scheduler = TetrisScheduler(8, 2.0, 128.0)
        n_set = np.array([3, 0, 0, 0, 0, 0, 0, 0], dtype=np.int64)
        n_reset = np.array([0, 2, 0, 0, 0, 0, 0, 0], dtype=np.int64)
        first = scheduler.schedule(n_set, n_reset)
        # A caller re-pricing its schedule in place (fault-retry style).
        first.result += 5
        first.subresult += 3
        first.write1_queue.append(
            ScheduledOp(unit=7, kind="write1", slot=0, current=1.0, n_bits=1)
        )
        second = scheduler.schedule(n_set, n_reset)
        assert scheduler.memo_hits >= 1
        assert second.result == 1 and second.subresult == 0
        assert len(second.write1_queue) == 1
        # And the served copies are themselves independent objects.
        assert second is not first

    def test_copy_shares_frozen_ops_but_not_queues(self):
        scheduler = TetrisScheduler(8, 2.0, 128.0, memo_size=0)
        sched = scheduler.schedule(
            np.array([2, 1], dtype=np.int64), np.array([1, 0], dtype=np.int64)
        )
        dup = sched.copy()
        assert dup is not sched
        assert dup.write1_queue is not sched.write1_queue
        assert dup.write1_queue == sched.write1_queue
        dup.write1_queue.clear()
        assert sched.write1_queue  # original untouched


class TestZeroDemandCorner:
    def test_scheduler_zero_demand_empty_valid_schedule(self):
        sched = TetrisScheduler(8, 2.0, 128.0).schedule(
            np.zeros(8, dtype=np.int64), np.zeros(8, dtype=np.int64)
        )
        assert sched.result == 0 and sched.subresult == 0
        assert sched.service_units() == 0.0
        assert not sched.write1_queue and not sched.write0_queue
        verify_schedule(
            sched,
            n_set=np.zeros(8, dtype=np.int64),
            n_reset=np.zeros(8, dtype=np.int64),
            L=2.0,
            units=0.0,
        )

    @pytest.mark.parametrize("name", sorted(SCHEME_REGISTRY))
    def test_silent_write_costs_zero_write_stage(self, name):
        """Rewriting identical data: content-aware schemes must report a
        zero-length write stage; fixed-latency baselines keep their
        constant (they program blindly by design)."""
        cfg = default_config()
        scheme = get_scheme(name, cfg)
        rng = np.random.default_rng(11)
        data = rng.integers(0, 2**63, size=8, dtype=np.uint64)
        state = LineState.from_logical(data)
        if name == "preset":
            # PreSET's demand is the new data's zero count, not the diff.
            out = scheme.write(state, data)
            n_zero = [64 - bin(int(u)).count("1") for u in data]
            expected = analytic.preset_units(
                n_zero, analytic.OperatingPoint.from_config(cfg)
            )
            assert out.units == pytest.approx(expected)
            return
        out = scheme.write(state, data)
        if name in ("tetris", "tetris_relaxed", "palp"):
            assert out.units == 0.0
            assert out.service_ns == pytest.approx(
                cfg.timings.t_read_ns + cfg.analysis_overhead_ns
            )
            assert out.n_set == 0 and out.n_reset == 0
        elif name == "datacon":
            assert out.units == 0.0  # no dirty units, no write stage
            assert out.service_ns == pytest.approx(cfg.timings.t_read_ns)
            assert out.n_set == 0 and out.n_reset == 0
        elif name == "dcw":
            assert out.n_set == 0 and out.n_reset == 0
            assert out.units == 8.0  # timing is content-independent
        else:
            assert out.units == scheme.worst_case_units()


class TestChunkSplitProperties:
    """Property tests over random over-budget demands (satellite fix)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_bits_conserved_and_no_zero_chunks(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(40):
            K = int(rng.integers(2, 12))
            L = float(rng.choice([1.0, 1.5, 2.0, 3.0]))
            budget = float(rng.integers(2, 12)) + float(rng.choice([0.0, 0.5]))
            if budget < L:
                continue
            scheduler = TetrisScheduler(K, L, budget, allow_split=True)
            n_set = rng.integers(0, 40, size=8)
            n_reset = rng.integers(0, 40, size=8)
            sched = scheduler.schedule(n_set, n_reset)
            for queue, counts, cost in (
                (sched.write1_queue, n_set, 1.0),
                (sched.write0_queue, n_reset, L),
            ):
                per_unit = np.zeros(8, dtype=np.int64)
                for op in queue:
                    assert op.n_bits >= 1
                    assert op.current == pytest.approx(op.n_bits * cost)
                    assert op.current <= budget + 1e-9
                    per_unit[op.unit] += op.n_bits
                np.testing.assert_array_equal(per_unit, counts)

    def test_budget_below_one_cell_raises(self):
        scheduler = TetrisScheduler(8, 4.0, 3.0, allow_split=True)
        with pytest.raises(ScheduleError):
            scheduler.schedule(
                np.zeros(2, dtype=np.int64), np.array([1, 0], dtype=np.int64)
            )

    def test_zero_bit_op_rejected_at_construction(self):
        with pytest.raises(ValueError):
            ScheduledOp(unit=0, kind="write0", slot=0, current=2.0, n_bits=0)
        with pytest.raises(ValueError):
            ScheduledOp(unit=0, kind="write1", slot=0, current=0.0, n_bits=1)


# ----------------------------------------------------------------------
# Layer 4: the paper-claims ledger.
# ----------------------------------------------------------------------
class TestPaperClaimsLedger:
    def test_table_ii_matches_live_config(self):
        cfg = default_config()
        expect("t_set_ns", cfg.timings.t_set_ns)
        expect("t_reset_ns", cfg.timings.t_reset_ns)
        expect("t_read_ns", cfg.timings.t_read_ns)
        expect("K", cfg.K)
        expect("L", cfg.L)
        expect("chip_power_budget", cfg.power.power_budget_per_chip)
        expect("bank_power_budget", cfg.bank_power_budget)
        expect("data_unit_bits", cfg.data_unit_bits)
        expect("analysis_overhead_ns", cfg.analysis_overhead_ns)

    def test_equation_constants_match_analytic_models(self):
        point = analytic.OperatingPoint()
        expect("eq1_conventional_units", analytic.conventional_units(point))
        expect("eq2_flip_n_write_units", analytic.flip_n_write_units(point))
        expect("eq3_two_stage_units", analytic.two_stage_units(point))
        expect("eq4_three_stage_units", analytic.three_stage_units(point))

    def test_band_miss_raises_with_provenance(self):
        with pytest.raises(AssertionError, match="Fig. 10"):
            expect("fig10_tetris_units", 3.0)
        assert not check("fig10_tetris_units", 3.0)
        assert check("fig10_tetris_units", 1.26)

    def test_unknown_claim_lists_ledger(self):
        with pytest.raises(KeyError, match="ledger has"):
            band("nope")

    def test_rankings_cover_the_four_metrics(self):
        assert set(RANKINGS) == {
            "read_latency", "write_latency", "ipc_improvement",
            "running_time",
        }
        for spec in RANKINGS.values():
            assert spec["order"][0] == "tetris"

    def test_every_claim_is_self_consistent(self):
        for claim in CLAIMS.values():
            assert claim.low <= claim.high, claim.name
            if claim.paper is not None:
                assert claim.holds(claim.paper), claim.name
