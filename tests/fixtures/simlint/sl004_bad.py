"""simlint fixture — SL004 must fire on each exact float comparison."""


def check(outcome, t_set_ns, baseline):
    exact_service = outcome.service_ns == 3440.0  # BAD
    nonzero_energy = outcome.energy != 0  # BAD
    derived = t_set_ns == outcome.read_ns + outcome.analysis_ns  # BAD
    cross = baseline.total_energy == outcome.energy  # BAD
    return exact_service, nonzero_energy, derived, cross
