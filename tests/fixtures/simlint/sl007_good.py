"""simlint fixture — failure handlers SL007 must accept."""

import logging

from repro.faults.ecp import UncorrectableWriteError

log = logging.getLogger(__name__)


def specific_handler(bank, line, data):
    """Catching the specific failure and handling it is fine."""
    try:
        return bank.write(line, data)
    except UncorrectableWriteError as exc:
        log.error("line %d lost: %s", line, exc)
        return None


def broad_but_reraises(fn):
    """A broad catch that annotates and re-raises does not swallow."""
    try:
        return fn()
    except Exception as exc:
        raise RuntimeError("simulation step failed") from exc


def broad_with_handling(fn, fallback):
    """A broad catch whose body *does* something is accepted."""
    try:
        return fn()
    except Exception:
        log.warning("falling back after failure")
        return fallback


def narrow_pass_is_fine(mapping, key):
    """`pass` on a specific, expected exception is not a swallow."""
    try:
        del mapping[key]
    except KeyError:
        pass
    return mapping
