"""simlint fixture — SL005 must fire on each mutable default below."""


def collect_stats(samples=[]):  # BAD
    samples.append(1)
    return samples


def merge_counters(into={}, tags=set()):  # BAD x2
    return into, tags


def build_queue(*, entries=list()):  # BAD
    return entries
