"""simlint fixture — SL002 must fire on every wall-clock read below.

Linted as module ``repro.core.fixture_bad`` (SL002 scopes to the
simulated-time packages).
"""

import time
from datetime import datetime
from time import perf_counter


def profile_pack(schedule):
    started = time.time()  # BAD
    precise = perf_counter()  # BAD
    stamp = datetime.now()  # BAD
    mono = time.monotonic_ns()  # BAD
    return started, precise, stamp, mono
