"""simlint fixture — immutable defaults SL005 must accept."""


def collect_stats(samples=None, window=(), label="", scale=1.0):
    if samples is None:
        samples = []
    return samples, window, label, scale


def merge_counters(into=None, *, frozen=frozenset()):
    return {} if into is None else into, frozen
