"""One module whose public surface drifted from API.md."""


def kept_function(x):
    return x


def new_function(y):
    """Public but missing from API.md."""
    return y
