"""Fixture package for API-drift detection."""
