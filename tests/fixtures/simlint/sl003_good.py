"""simlint fixture — complete/abstract schemes SL003 must accept."""

from abc import abstractmethod

from repro.schemes.base import WriteScheme


class CompleteScheme(WriteScheme):
    name = "fixture_complete"
    requires_read = True

    def write(self, state, new_logical):
        return self._outcome(
            units=1.0, read_ns=self.t_read, analysis_ns=0.0, n_set=0, n_reset=0
        )

    def worst_case_units(self) -> float:
        return 1.0


class TemplateScheme(WriteScheme):
    """The template-method hook also satisfies the write requirement."""

    name = "fixture_template"
    requires_read = False

    def _write_once(self, state, new_logical):
        return self._outcome(
            units=1.0, read_ns=0.0, analysis_ns=0.0, n_set=0, n_reset=0
        )

    def worst_case_units(self) -> float:
        return 1.0


class StagedSchemeBase(WriteScheme):
    """Abstract intermediates are exempt: they add an abstract stage."""

    @abstractmethod
    def stage_lengths(self) -> tuple[float, ...]: ...
