"""Blocking calls inside ``async def`` that SL015 must flag.

Every one of these parks the shared service event loop, freezing
admission, watch streams, and draining for every tenant at once.
"""

import os
import select
import socket
import subprocess
import time


async def handle_request(writer):
    time.sleep(0.5)                                 # SL015: time.sleep
    proc = subprocess.run(["sync"], check=False)    # SL015: subprocess.run
    return proc.returncode


async def persist_row(path, row):
    with open(path, "a") as fh:                     # SL015: bare open
        fh.write(row)
        os.fsync(fh.fileno())                       # SL015: os.fsync
    return path


async def poll_upstream(host, port):
    sock = socket.create_connection((host, port))   # SL015: sync connect
    ready, _, _ = select.select([sock], [], [], 1)  # SL015: select.select
    return bool(ready)
