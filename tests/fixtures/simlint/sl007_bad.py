"""simlint fixture — SL007 must fire on these swallowed failures."""


def bare_except_swallows(bank, line, data):
    try:
        return bank.write(line, data)
    except:  # BAD: swallows InvariantViolation, UncorrectableWriteError, ...
        return None


def broad_pass(fn):
    try:
        return fn()
    except Exception:  # BAD: the classic silent fault-eater
        pass


def broad_ellipsis_with_docstring(fn):
    try:
        return fn()
    except BaseException:  # BAD: docstring + ellipsis still does nothing
        """Deliberately ignored."""
        ...
