"""simlint fixture — unit-suffixed / exempt signatures SL006 must accept."""


def schedule_after(delay_ns: float, fn):
    return delay_ns, fn


def drain_queue(queue, timeout_cycles: int, idle_period_ns: float):
    return queue, timeout_cycles, idle_period_ns


def _internal_helper(delay):  # private functions are exempt
    return delay


def pack_line(n_set, n_reset, budget):  # not time-valued at all
    return n_set, n_reset, budget
