"""simlint fixture — output styles SL008 must accept."""

import logging

from repro.obs import MetricRegistry

log = logging.getLogger(__name__)


def summarize(result):
    """Returning the formatted string lets the CLI decide to print it."""
    return f"mean units = {result.mean_units:.3f}"


def record_progress(metrics: MetricRegistry, done: int) -> None:
    """Metrics flow through the registry, not stdout."""
    metrics.counter("experiment.lines_done").inc(done)


def warn_on_retry(line: int, attempt: int) -> None:
    """Logging is routable and silenceable; print is neither."""
    log.warning("line %d needed attempt %d", line, attempt)


def print_like_name_is_not_a_call(printer):
    """Only resolved calls to the builtin fire, not attribute lookups."""
    printer.print_summary()
    return printer
