"""simlint fixture — seeded RNG constructions SL001 must accept."""

import random

import numpy as np


def jitter_requests(seed: int, rng: np.random.Generator):
    root = np.random.default_rng(seed)
    child = np.random.default_rng(np.random.SeedSequence([seed, 7]))
    legacy_but_seeded = np.random.RandomState(seed)
    stdlib_seeded = random.Random(seed)
    draws = rng.integers(0, 64, size=8)
    return root, child, legacy_but_seeded, stdlib_seeded, draws
