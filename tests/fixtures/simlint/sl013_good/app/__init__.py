"""Fixture package for API-drift detection (in-sync variant)."""
