"""One module whose public surface matches API.md exactly."""


def kept_function(x):
    return x


def new_function(y):
    return y
