"""simlint fixture — SL006 must fire on each unsuffixed time parameter.

Linted as module ``repro.core.fixture_bad`` (SL006 scopes to
``repro.core`` / ``repro.schemes``).
"""


def schedule_after(delay, fn):  # BAD: delay in... ns? cycles?
    return delay, fn


def drain_queue(queue, timeout, idle_period):  # BAD x2
    return queue, timeout, idle_period
