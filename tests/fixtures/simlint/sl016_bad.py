"""SL016 bad fixture.

Linted as ``repro.fastpath.pricer``: every simulator import below is a
violation — an analytic lane that calls the DES it is differentially
rechecked against certifies nothing.
"""

import repro.sim  # BAD: the event-driven simulator itself
import repro.schemes.tetris  # BAD: a production write scheme
from repro.pcm.state import LineState  # BAD: device state model
from repro.schemes import get_scheme  # BAD: scheme registry
from repro.sim.engine import EventQueue  # BAD: DES engine internals


def price_with_the_simulator(trace, config):
    # A "fastpath" that answers by running the production scheme makes
    # the recheck compare the simulator against itself.
    scheme = get_scheme("tetris", config)
    return scheme, LineState, EventQueue
