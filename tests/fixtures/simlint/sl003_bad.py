"""simlint fixture — SL003 must fire on these incomplete schemes."""

from repro.schemes.base import WriteScheme


class GhostScheme(WriteScheme):
    """BAD: no ``name``/``requires_read`` -> never reaches SCHEME_REGISTRY,
    and ``worst_case_units`` is missing."""

    def write(self, state, new_logical):
        return None


class HalfScheme(WriteScheme):
    """BAD: registered but ``write`` is not overridden, and ``name`` is
    not a string literal."""

    name = object()
    requires_read = False

    def worst_case_units(self) -> float:
        return 8.0
