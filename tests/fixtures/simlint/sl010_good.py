"""SL010 good fixture: an independent analytic model done right.

Linted as ``repro.oracle.analytic``: only stdlib/numpy imports, every
quantity computed from the paper's equations — nothing shared with the
production schedulers.
"""

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Point:
    K: int
    L: float
    budget: float
    write_units: int


def two_stage_units(point: Point) -> float:
    # Eq. 3, straight from the paper text.
    nm = point.write_units
    return nm / point.K + nm / (2.0 * point.L)


def chunk_cells(cells: int, cost: float, budget: float) -> list:
    per_chunk = int(budget // cost)
    full, rest = divmod(cells, per_chunk)
    return [per_chunk] * full + ([rest] if rest else [])


def ceil_units(subresult: int, K: int) -> int:
    return int(math.ceil(subresult / K))


def total_demand(n_set: np.ndarray, n_reset: np.ndarray, L: float) -> float:
    return float(np.sum(n_set) + L * np.sum(n_reset))
