"""simlint fixture — simulated-time idioms SL002 must accept."""


def service_write(sim, schedule, t_set_ns: float):
    start_ns = sim.now  # the DES clock is the only clock
    finish_ns = start_ns + schedule.service_units() * t_set_ns
    sim.schedule(finish_ns - sim.now, lambda: None)
    return finish_ns


def strftime_like(label: str) -> str:
    # A method merely *named* time-ish on another object is fine.
    return label.title()
