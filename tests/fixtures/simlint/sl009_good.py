"""Fork-safe pool usage SL009 accepts (and SL014-sanctioned fan-out).

Workers are top-level (picklable under spawn), per-process memoization
goes through ``functools.lru_cache`` on a pure function instead of a
module-level dict, module-level state that workers read is immutable,
and dispatch goes through the supervised ``parallel_map`` rather than a
bare ``multiprocessing.Pool``.
"""

from functools import lru_cache, partial

from repro.parallel.engine import parallel_map

LIMIT = 8  # immutable module constant: safe to read from any process


@lru_cache(maxsize=8)
def _expensive(x):
    return x * x


def worker(x):
    # Per-process memoization via lru_cache on a pure function — the
    # fork-safe replacement for a module-level cache dict.
    return _expensive(x) + LIMIT


def offset_worker(x, offset):
    return x + offset


def run():
    a = parallel_map(worker, range(LIMIT), workers=2)
    b = parallel_map(partial(offset_worker, offset=2), range(LIMIT), workers=2)
    return a + b


def local_mutables_are_fine():
    acc = []
    for i in range(3):
        acc.append(i)
    return acc
