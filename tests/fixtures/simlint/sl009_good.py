"""Fork-safe pool usage SL009 accepts.

Workers are top-level (picklable under spawn), per-process memoization
goes through ``functools.lru_cache`` on a pure function instead of a
module-level dict, and module-level state that workers read is immutable.
"""

import multiprocessing
from functools import lru_cache, partial

LIMIT = 8  # immutable module constant: safe to read from any process


@lru_cache(maxsize=8)
def _expensive(x):
    return x * x


def worker(x):
    # Per-process memoization via lru_cache on a pure function — the
    # fork-safe replacement for a module-level cache dict.
    return _expensive(x) + LIMIT


def offset_worker(x, offset):
    return x + offset


def run():
    with multiprocessing.Pool(2) as pool:
        a = pool.map(worker, range(LIMIT))
        b = pool.map(partial(offset_worker, offset=2), range(LIMIT))
    return a + b


def local_mutables_are_fine():
    acc = []
    for i in range(3):
        acc.append(i)
    return acc
