"""Bare multiprocessing pools SL014 must flag.

Every one of these bypasses the WorkerSupervisor: no per-cell deadline,
no worker-death detection, no retry/quarantine, no serial fallback.
"""

import multiprocessing
from multiprocessing import get_context


def run_cell(payload):
    return payload * 2


def sweep_with_bare_pool(payloads):
    with multiprocessing.Pool(4) as pool:                  # SL014: bare Pool
        rows = list(pool.imap_unordered(run_cell, payloads))  # SL014: imap
        extra = pool.map_async(run_cell, payloads)         # SL014: map_async
    return rows, extra


def sweep_with_context_pool(payloads):
    pool = get_context("spawn").Pool(2)                    # SL014: ctx Pool
    try:
        return pool.starmap(run_cell, [(p,) for p in payloads])  # SL014
    finally:
        pool.terminate()
