"""Nothing imports this module and it has no __main__ guard: orphan."""


def unused():
    return 0
