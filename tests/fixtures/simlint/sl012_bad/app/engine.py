"""Top layer."""

import app.stray
from app.alpha import a


def run():
    return a() + app.stray.VALUE
