"""Fixture package: a tiny layered app that breaks its own contract."""
