"""Other half of the import cycle."""

import app.alpha


def b():
    return app.alpha.a()
