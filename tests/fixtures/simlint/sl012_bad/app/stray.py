"""Imported by engine but covered by no declared layer: unmapped."""

VALUE = 1
