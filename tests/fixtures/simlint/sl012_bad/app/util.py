"""Lowest layer — importing engine is an upward (SL012) violation."""

from app.engine import run


def helper():
    return run()
