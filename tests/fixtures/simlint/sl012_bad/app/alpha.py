"""Half of an import cycle with app.beta."""

import app.beta
from app.util import helper


def a():
    return helper() + app.beta.b()
