"""Lowest layer: imports nothing above it."""


def helper():
    return 1
