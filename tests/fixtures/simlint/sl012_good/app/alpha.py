"""Middle layer; same-layer import of beta is fine, no cycle back."""

import app.beta
from app.util import helper


def a():
    return helper() + app.beta.b()
