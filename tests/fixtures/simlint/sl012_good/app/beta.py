"""Middle layer; declared orphan_ok (library surface, not yet imported
at top level — alpha imports it, so it is not an orphan anyway)."""

from app.util import helper


def b():
    return helper()
