"""Top layer: may import anything below; function-level back-import is
the sanctioned cycle break and must stay legal."""

from app.alpha import a


def run():
    from app.beta import b  # function-level: excluded from cycle graph

    return a() + b()


if __name__ == "__main__":
    raise SystemExit(run())
