"""Fixture package: the same layered app, contract respected."""
