"""simlint fixture — SL001 must fire on every RNG call site below.

This file is never imported; tests lint its text as module
``repro.trace.fixture_bad`` (SL001 scopes to ``repro.*``).
"""

import random

import numpy as np


def jitter_requests():
    rng = np.random.default_rng()  # BAD: OS entropy
    np.random.seed(1234)  # BAD: global numpy state
    burst = np.random.randint(0, 64)  # BAD: legacy global API
    gap = random.random()  # BAD: stdlib global state
    source = random.Random()  # BAD: unseeded instance
    return rng, burst, gap, source
