"""Bad fixture: SL011 — mixed physical units in dataflow.

Every function below mixes unit families the suffix conventions declare
(ns vs cycles, pJ vs ns, ...) without an ``X_PER_Y`` conversion.  The
last one replays the real seam this rule caught in
``repro.core.hwmodel.worst_case_cycles`` (a bare per-unit cost
multiplied into a unit count, then added to cycle constants).
"""

LOAD_CYCLES = 1


def total_latency_ns(t_read_ns, t_cmd_cycles):
    return t_read_ns + t_cmd_cycles  # mixed +: ns vs cycles


def deadline_exceeded(budget_ns, elapsed_cycles):
    return budget_ns < elapsed_cycles  # mixed comparison


def window(t_set_ns):
    window_cycles = t_set_ns  # ns value assigned to *_cycles name
    return window_cycles


def accumulate(total_ns, step_cycles):
    total_ns += step_cycles  # mixed +=
    return total_ns


def program_pulse(width_ns, current_ma):
    del current_ma
    return width_ns


def issue(t_cmd_cycles):
    return program_pulse(t_cmd_cycles, 3.0)  # cycles into width_ns (positional)


def schedule(t_set_ns, enqueue):
    enqueue(deadline_cycles=t_set_ns)  # ns into *_cycles keyword


def drift_ns(t_cmd_cycles):
    return t_cmd_cycles  # cycles returned from a *_ns function


def worst_case_cycles(n_units):
    return 4 * n_units + LOAD_CYCLES  # unit count + cycles, conversion implied
