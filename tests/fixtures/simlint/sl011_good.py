"""Good fixture: SL011 — unit discipline the rule must accept.

Conversions ride ``X_PER_Y`` constants, same-unit arithmetic is free,
ratios and dimensional products deliberately stay unknown, and the
``CYCLES_PER_UNIT`` pattern mirrors the fixed
``repro.core.hwmodel.worst_case_cycles`` (the regression pin for the
real finding this rule surfaced).
"""

NS_PER_CYCLE = 2.5
CYCLES_PER_NS = 0.4
PJ_PER_BIT = 1.3
CYCLES_PER_UNIT = 4
LOAD_CYCLES = 1


def total_latency_ns(t_read_ns, t_cmd_cycles):
    return t_read_ns + t_cmd_cycles * NS_PER_CYCLE


def deadline_exceeded(budget_ns, elapsed_cycles):
    return budget_ns < elapsed_cycles * NS_PER_CYCLE


def window(t_set_ns):
    window_cycles = t_set_ns * CYCLES_PER_NS
    return window_cycles


def to_cycles(t_ns):
    return t_ns / NS_PER_CYCLE


def accumulate(total_ns, step_cycles):
    total_ns += step_cycles * NS_PER_CYCLE
    return total_ns


def energy_pj(n_bits):
    return n_bits * PJ_PER_BIT


def utilization(busy_ns, total_ns):
    return busy_ns / total_ns  # dimensionless ratio: unknown, not flagged


def charge(current_ma, t_ns):
    return current_ma * t_ns  # dimensional product: out of scope


def scaled_ns(t_ns):
    return 2 * t_ns + min(t_ns, 5.0)


def worst_case_cycles(n_units):
    return CYCLES_PER_UNIT * n_units + LOAD_CYCLES
