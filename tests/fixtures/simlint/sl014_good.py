"""Supervised parallelism SL014 endorses.

All fan-out goes through the sanctioned layer: WorkerSupervisor (or the
SweepEngine / parallel_map wrappers built on it), which supplies
deadlines, death detection, retry, quarantine, and serial fallback.
"""

from repro.parallel.engine import parallel_map
from repro.parallel.supervisor import RetryPolicy, WorkerSupervisor


def run_cell(payload):
    return payload * 2


def sweep_supervised(payloads):
    supervisor = WorkerSupervisor(
        run_cell, workers=2, policy=RetryPolicy(max_retries=1)
    )
    reports = supervisor.run(enumerate(payloads))
    return sorted((r.task_id, r.value) for r in reports)


def map_supervised(items):
    return parallel_map(run_cell, items, workers=2)
