"""simlint fixture — SL008 must fire on these bare prints."""


def report_progress(done, total):
    print(f"progress {done}/{total}")  # BAD: stdout belongs to repro.cli


def debug_dump(schedule):
    for op in schedule.write1_queue:
        print("op", op.unit, op.slot)  # BAD: leftover debugging output


def summarize(result):
    line = f"mean units = {result.mean_units:.3f}"
    print(line)  # BAD: return the string instead
    return line
