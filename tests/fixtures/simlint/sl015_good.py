"""Async-hygiene patterns SL015 must accept.

Blocking work routed off the event loop (executor threads, asyncio
natives) and sync helpers that merely *contain* blocking calls are all
fine — the loop itself never waits on them.
"""

import asyncio
import os
import time


def _persist_row(path, row):
    # Sync helper: blocking I/O is fine here, it runs on an executor.
    with open(path, "a") as fh:
        fh.write(row)
        os.fsync(fh.fileno())


async def handle_request(path, row):
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, _persist_row, path, row)
    await asyncio.sleep(0.01)


async def retry_with_backoff(attempt):
    # Nested def: executes on whatever thread calls it, not this
    # coroutine's await chain.
    def backoff_s():
        time.sleep(0)  # noqa: the nested body is out of SL015 scope
        return 0.1 * attempt

    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, backoff_s)


async def open_stream(host, port):
    reader, writer = await asyncio.open_connection(host, port)
    writer.close()
    await writer.wait_closed()
    return reader
