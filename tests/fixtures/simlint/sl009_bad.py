"""Fork-unsafe multiprocessing patterns SL009 must flag.

Module-level mutable state consumed inside pool workers diverges per
forked process; lambdas submitted as pool tasks break under spawn.
"""

import multiprocessing
from functools import partial

RESULTS = []  # mutable module state, consumed below
_CACHE = {}   # ditto — per-process copies diverge silently


def worker(x):
    if x in _CACHE:        # SL009: module-level mutable read in worker
        return _CACHE[x]
    _CACHE[x] = x * x
    RESULTS.append(x)      # SL009: accumulation lost when the pool exits
    return _CACHE[x]


def helper(x, y):
    RESULTS.append(x)      # SL009: submitted via partial(helper, ...)
    return x + y


def run():
    with multiprocessing.Pool(2) as pool:
        out = list(pool.imap_unordered(worker, range(4)))
        out += pool.map(lambda v: v + 1, range(4))       # SL009: lambda task
        out += pool.map(partial(helper, y=1), range(4))
    return out


def spawn_proc():
    proc = multiprocessing.Process(target=lambda: None)  # SL009: lambda task
    proc.start()
    return proc
