"""SL016 good fixture: an analytic lane with the right dependencies.

Linted as ``repro.fastpath.pricer``: shared *inputs* (config schema,
batch packing) and the independent oracle are fine — only the simulator
packages under differential test are off limits.
"""

import heapq
from collections import deque

import numpy as np

from repro.config import SystemConfig
from repro.core.batch import pack_batch
from repro.oracle import analytic


def price_line(n_set: np.ndarray, n_reset: np.ndarray, config: SystemConfig):
    point = analytic.OperatingPoint.from_config(config)
    packed = pack_batch(
        n_set[None, :], n_reset[None, :], l_ratio=point.L, budget=point.budget
    )
    return packed


def merge_arrivals(per_core_times: list) -> list:
    heap = [(times[0], k, deque(times)) for k, times in
            enumerate(per_core_times) if len(times)]
    heapq.heapify(heap)
    merged = []
    while heap:
        _, k, times = heapq.heappop(heap)
        merged.append((times.popleft(), k))
        if times:
            heapq.heappush(heap, (times[0], k, times))
    return merged
