"""SL010 bad fixture.

Linted under two module scopes by the test harness:

* as ``repro.oracle.analytic`` — the five simulator imports below are
  violations (the independent model pulling in production code);
* as ``repro.schemes.fixture`` — the two ``repro.oracle`` imports are
  violations (production code deriving answers from the oracle).
"""

import repro.core.analysis  # BAD (oracle scope): production scheduler
import repro.sim  # BAD (oracle scope): the DES the oracle must check
from repro.config import default_config  # BAD (oracle scope)
from repro.pcm.state import LineState  # BAD (oracle scope)
from repro.schemes import get_scheme  # BAD (oracle scope)

import repro.oracle  # BAD (scheme scope): scheme consulting the oracle
from repro.oracle.analytic import tetris_units  # BAD (scheme scope)


def units_from_oracle(n_set, n_reset, point):
    # A "scheme" that prices itself with the oracle's own model makes
    # the differential cross-check a tautology.
    return tetris_units(n_set, n_reset, point)


def oracle_from_scheduler(n_set, n_reset):
    # And an "oracle" that calls the production scheduler cannot catch
    # the scheduler's bugs.
    sched = repro.core.analysis.analyze(n_set, n_reset)
    return sched.service_units()
