"""simlint fixture — tolerant/ordering comparisons SL004 must accept."""

import math

import pytest


def check(outcome, op, t_set_ns, count):
    close = math.isclose(outcome.service_ns, 3440.0)
    approx = outcome.energy == pytest.approx(1.25)
    ordered = outcome.read_ns > 0 and outcome.service_ns >= t_set_ns
    label = op.kind == "write1"  # string compare, not a quantity
    integers = count == 8  # unitless int compare
    return close, approx, ordered, label, integers
