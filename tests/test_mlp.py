"""Tests for the memory-level-parallelism core model."""

import numpy as np
import pytest

from repro.config import ConfigError, CPUConfig, default_config
from repro.experiments.fullsystem import run_fullsystem
from repro.trace.record import OP_READ, RECORD_DTYPE, Trace
from repro.trace.synthetic import generate_trace


def read_trace(lines, gap=100):
    rows = [(0, OP_READ, gap, ln) for ln in lines]
    records = np.array(rows, dtype=RECORD_DTYPE)
    return Trace("mlp", 1, records, np.zeros((0, 8, 2), np.uint8))


def cfg_with_mlp(m):
    return default_config().replace(cpu=CPUConfig(max_outstanding_reads=m))


class TestConfig:
    def test_default_is_blocking(self):
        assert default_config().cpu.max_outstanding_reads == 1

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            CPUConfig(max_outstanding_reads=0)

    def test_rejects_bad_freq(self):
        with pytest.raises(ConfigError):
            CPUConfig(freq_ghz=0.0)


class TestMLPTiming:
    def test_blocking_core_serializes_reads(self):
        # Two reads to different banks; MLP=1 waits for each.
        trace = read_trace([0, 1], gap=100)
        res = run_fullsystem(trace, "dcw", cfg_with_mlp(1))
        # 50 + 50 + 2 gaps of 50 ns each.
        assert res.runtime_ns == pytest.approx(2 * (50 + 50))

    def test_mlp2_overlaps_misses(self):
        trace = read_trace([0, 1], gap=100)
        res = run_fullsystem(trace, "dcw", cfg_with_mlp(2))
        # Second read issues while the first is still in flight:
        # 50 (gap) + [read0 starts] 50 (gap) + read1 (50) -> both overlap.
        assert res.runtime_ns < 2 * (50 + 50)

    def test_mlp_improves_ipc_monotonically(self):
        trace = generate_trace("canneal", requests_per_core=600, seed=8)
        ipcs = []
        for m in (1, 2, 4):
            res = run_fullsystem(trace, "dcw", cfg_with_mlp(m))
            ipcs.append(res.ipc)
        assert ipcs[0] <= ipcs[1] <= ipcs[2]

    def test_same_bank_reads_still_serialize_at_memory(self):
        # MLP can't conjure bank bandwidth: same-bank reads queue.
        trace = read_trace([0, 8, 16], gap=2)
        res = run_fullsystem(trace, "dcw", cfg_with_mlp(4))
        assert res.controller.read_latency.max >= 100.0

    def test_all_reads_complete_under_mlp(self):
        trace = generate_trace("ferret", requests_per_core=300, seed=8)
        res = run_fullsystem(trace, "tetris", cfg_with_mlp(4))
        done = res.controller.read_latency.count + res.controller.write_latency.count
        assert done == len(trace)
        assert all(c.finish_ns >= 0 for c in res.cores)

    def test_scheme_ranking_survives_mlp(self):
        """Tetris's advantage persists with an O3-like MLP window —
        the substitution argument of DESIGN.md §4."""
        trace = generate_trace("dedup", requests_per_core=500, seed=8)
        cfg = cfg_with_mlp(4)
        dcw = run_fullsystem(trace, "dcw", cfg)
        tetris = run_fullsystem(trace, "tetris", cfg)
        assert tetris.mean_read_latency_ns < dcw.mean_read_latency_ns
        assert tetris.ipc > dcw.ipc
