"""Tests for the power-utilization analysis (§III motivation)."""

import numpy as np
import pytest

from repro.analysis.power_util import power_utilization
from repro.config import default_config


class TestPowerUtilization:
    def test_bounds(self, rng):
        n_set = rng.poisson(6.7, size=(50, 8))
        n_reset = rng.poisson(2.9, size=(50, 8))
        for scheme in ("dcw", "flip_n_write", "two_stage", "three_stage", "tetris"):
            util = power_utilization(n_set, n_reset, scheme)
            assert (util >= 0).all() and (util <= 1).all(), scheme

    def test_silent_write_zero_utilization(self):
        zeros = np.zeros((1, 8), dtype=int)
        for scheme in ("dcw", "flip_n_write", "three_stage", "tetris"):
            assert power_utilization(zeros, zeros, scheme)[0] == 0.0

    def test_fnw_exactly_doubles_dcw(self, rng):
        """FNW halves the reservation at identical useful work."""
        n_set = rng.poisson(6.7, size=(30, 8))
        n_reset = rng.poisson(2.9, size=(30, 8))
        dcw = power_utilization(n_set, n_reset, "dcw")
        fnw = power_utilization(n_set, n_reset, "flip_n_write")
        assert np.allclose(fnw, 2 * dcw)

    def test_tetris_highest_among_comparison_schemes(self, rng):
        n_set = rng.poisson(6.7, size=(30, 8))
        n_reset = rng.poisson(2.9, size=(30, 8))
        tetris = power_utilization(n_set, n_reset, "tetris")
        three = power_utilization(n_set, n_reset, "three_stage")
        assert (tetris >= three - 1e-12).all()

    def test_full_budget_write_near_one(self):
        """8 units x 16 SETs saturate one write unit's reservation:
        useful = 128 x Tset, reserved = 128 x Tset."""
        n_set = np.full((1, 8), 16, dtype=int)
        n_reset = np.zeros((1, 8), dtype=int)
        util = power_utilization(n_set, n_reset, "tetris")
        assert util[0] == pytest.approx(1.0)

    def test_paper_motivation_magnitudes(self, rng):
        """The §III numbers: at the Fig-3 average profile, FNW sits near
        the paper's ~30% bound (our time-integrated metric is finer but
        lands the same story: far below half-used)."""
        n_set = rng.poisson(6.7, size=(400, 8))
        n_reset = rng.poisson(2.9, size=(400, 8))
        fnw = float(power_utilization(n_set, n_reset, "flip_n_write").mean())
        assert 0.05 < fnw < 0.35

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError):
            power_utilization(np.zeros((1, 8)), np.zeros((1, 8)), "bogus")
