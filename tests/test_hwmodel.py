"""Tests for the RTL-level Tetris Write Logic model (§IV.D derivation)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import analyze
from repro.core.hwmodel import (
    AreaModel,
    FirstFitUnit,
    SortingNetwork,
    SubSlotFitUnit,
    TetrisLogicModel,
)
from repro.core.overhead import AnalysisOverheadModel

counts8 = st.lists(st.integers(min_value=0, max_value=32), min_size=8, max_size=8)


class TestSortingNetwork:
    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=8, max_size=8))
    def test_sorts_descending(self, values):
        keys, _ = SortingNetwork(8).sort_descending(np.array(values))
        assert list(keys) == sorted(values, reverse=True)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=8, max_size=8))
    def test_tags_follow_keys(self, values):
        keys, tags = SortingNetwork(8).sort_descending(np.array(values))
        for k, t in zip(keys, tags):
            assert values[t] == k

    def test_cycle_cost_is_n(self):
        assert SortingNetwork(8).cycles_per_sort == 8
        assert SortingNetwork(16).cycles_per_sort == 16

    def test_width_checked(self):
        with pytest.raises(ValueError):
            SortingNetwork(8).sort_descending(np.zeros(4))
        with pytest.raises(ValueError):
            SortingNetwork(0)


class TestPipelines:
    def test_first_fit_unit_matches_reference(self):
        ffu = FirstFitUnit(budget=32.0)
        for d in (30.0, 20.0, 10.0, 2.0):
            ffu.place(d)
        assert len(ffu.bins) == 2
        assert ffu.cycles == 4

    def test_first_fit_rejects_oversized(self):
        with pytest.raises(ValueError):
            FirstFitUnit(budget=8.0).place(10.0)

    def test_subslot_unit_uses_interspace(self):
        ssu = SubSlotFitUnit(budget=32.0, K=8)
        ssu.load_interspace([30.0])       # one write unit, residual 2
        slot = ssu.place(2.0)
        assert slot < 8                   # hid inside the interspace
        slot = ssu.place(4.0)
        assert slot >= 8                  # needed an extra sub-slot
        assert len(ssu.extra) == 1


class TestTetrisLogicModel:
    def test_worst_case_is_41_cycles_at_8_units(self):
        """The paper's HLS measurement, derived from the RTL schedule."""
        assert TetrisLogicModel.worst_case_cycles(8) == 41

    def test_worst_case_matches_overhead_model(self):
        analytic = AnalysisOverheadModel()
        for n in (4, 8, 16, 32):
            assert TetrisLogicModel.worst_case_cycles(n) == analytic.estimated_cycles(n)

    def test_analyze_counts_cycles(self):
        model = TetrisLogicModel(8, K=8, L=2.0, budget=128.0)
        model.analyze([5] * 8, [2] * 8)
        assert model.cycles == 41

    def test_input_width_checked(self):
        model = TetrisLogicModel(8, K=8, L=2.0, budget=128.0)
        with pytest.raises(ValueError):
            model.analyze([1] * 4, [1] * 4)

    def test_area_model_supports_minimal_claim(self):
        """§IV.D: 'the area overhead hence is minimal' — a few thousand
        gate equivalents, well under a percent of chip periphery."""
        m = AreaModel()
        assert 1_000 < m.total_ge < 10_000
        assert m.fraction_of() < 0.01
        # The sorter dominates, as the paper's HLS discussion implies.
        assert m.sorter_ge > m.scan_ge > m.driver_ge

    def test_area_scales_with_units(self):
        small, big = AreaModel(n_units=8), AreaModel(n_units=16)
        assert big.total_ge > small.total_ge
        # Sorting network area grows quadratically in n.
        assert big.sorter_ge == pytest.approx(4 * small.sorter_ge)

    @settings(max_examples=150, deadline=None)
    @given(counts8, counts8)
    def test_hardware_matches_software_scheduler(self, n_set, n_reset):
        """The RTL model and the reference Algorithm 2 implementation
        must produce identical (result, subresult)."""
        hw = TetrisLogicModel(8, K=8, L=2.0, budget=128.0)
        result, subresult = hw.analyze(n_set, n_reset)
        sw = analyze(n_set, n_reset, K=8, L=2.0, power_budget=128.0)
        assert result == sw.result
        assert subresult == sw.subresult
