"""Tests for Algorithm 1 (read stage): flip decision and 0/1 counting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.read_stage import read_stage, read_stage_batch

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
_MASK = (1 << 64) - 1


def _stage(old, flip, new, **kw):
    return read_stage(
        np.array([old], dtype=np.uint64),
        np.array([flip]),
        np.array([new], dtype=np.uint64),
        **kw,
    )


class TestFlipDecision:
    def test_no_change_means_no_programs(self):
        rs = _stage(0xABCD, False, 0xABCD)
        assert rs.total_bit_writes == 0
        assert not rs.flip[0]

    def test_few_changes_no_flip(self):
        rs = _stage(0b0000, False, 0b0111)
        assert not rs.flip[0]
        assert int(rs.n_set[0]) == 3
        assert int(rs.n_reset[0]) == 0

    def test_inverting_write_flips(self):
        # All 64 bits would change -> store the complement instead.
        rs = _stage(0, False, _MASK)
        assert rs.flip[0]
        assert int(rs.physical[0]) == 0          # stored image unchanged
        assert rs.total_bit_writes == 0          # only the tag cell changes

    def test_exactly_half_changes_does_not_flip(self):
        # 32 changed bits + clean tag = distance 32 <= threshold.
        new = (1 << 32) - 1
        rs = _stage(0, False, new)
        assert not rs.flip[0]
        assert int(rs.n_set[0]) == 32

    def test_33_changes_flips(self):
        new = (1 << 33) - 1
        rs = _stage(0, False, new)
        assert rs.flip[0]
        # Flipped store: ~new vs old=0 -> programs 64-33=31 cells.
        assert rs.total_bit_writes == 31

    def test_stored_flip_tag_participates(self):
        # Old stored inverted; writing back the same logical value with a
        # straight encoding would change every cell.
        old_logical = 0x1234
        old_physical = ~old_logical & _MASK
        rs = _stage(old_physical, True, old_logical)
        assert rs.flip[0]                         # stays inverted
        assert rs.total_bit_writes == 0

    def test_logical_value_always_recoverable(self):
        rs = _stage(0xFF, False, 0xF0F0)
        stored = int(rs.physical[0])
        logical = ~stored & _MASK if rs.flip[0] else stored
        assert logical == 0xF0F0


class TestCounts:
    def test_set_and_reset_split(self):
        rs = _stage(0b1100, False, 0b1010)
        assert int(rs.n_set[0]) == 1
        assert int(rs.n_reset[0]) == 1

    def test_counts_are_post_flip(self):
        # 40 SETs requested -> flip -> only the 24 high cells of the
        # complement image need programming (0 -> 1).
        new = (1 << 40) - 1
        rs = _stage(0, False, new)
        assert rs.flip[0]
        assert int(rs.n_set[0]) == 24
        assert int(rs.n_reset[0]) == 0
        assert rs.total_bit_writes == 24

    def test_count_flip_bit_option(self):
        rs = _stage(0, False, _MASK, count_flip_bit=True)
        # Data cells unchanged, tag cell programmed 0 -> 1: one SET.
        assert int(rs.n_set[0]) == 1
        assert int(rs.n_reset[0]) == 0


class TestInvariants:
    @given(u64, st.booleans(), u64)
    def test_never_programs_more_than_half(self, old_phys, old_flip, new):
        rs = _stage(old_phys, old_flip, new)
        assert rs.total_bit_writes <= 32

    @given(u64, st.booleans(), u64)
    def test_flip_choice_is_optimal(self, old_phys, old_flip, new):
        """The chosen encoding never programs more cells (incl. tag) than
        the rejected one."""
        rs = _stage(old_phys, old_flip, new)
        straight_cost = (old_phys ^ new).bit_count() + (1 if old_flip else 0)
        flipped_cost = (old_phys ^ ~new & _MASK).bit_count() + (0 if old_flip else 1)
        chosen = flipped_cost if rs.flip[0] else straight_cost
        assert chosen <= min(straight_cost, flipped_cost)

    @given(u64, st.booleans(), u64)
    def test_sets_and_resets_recover_new_physical(self, old_phys, old_flip, new):
        rs = _stage(old_phys, old_flip, new)
        stored = int(rs.physical[0])
        sets = ~old_phys & stored & _MASK
        resets = old_phys & ~stored & _MASK
        assert sets.bit_count() == int(rs.n_set[0])
        assert resets.bit_count() == int(rs.n_reset[0])
        assert (old_phys | sets) & ~resets & _MASK == stored


class TestValidation:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            read_stage(
                np.zeros(2, dtype=np.uint64),
                np.zeros(3, dtype=bool),
                np.zeros(2, dtype=np.uint64),
            )

    def test_narrow_unit_bits(self):
        rs = _stage(0x0000, False, 0xFFFF, unit_bits=16)
        assert rs.flip[0]
        assert rs.total_bit_writes == 0


class TestBatch:
    @given(
        st.lists(st.tuples(u64, st.booleans(), u64), min_size=1, max_size=20)
    )
    def test_batch_matches_scalar(self, rows):
        old = np.array([r[0] for r in rows], dtype=np.uint64).reshape(-1, 1)
        flip = np.array([r[1] for r in rows]).reshape(-1, 1)
        new = np.array([r[2] for r in rows], dtype=np.uint64).reshape(-1, 1)
        batch = read_stage_batch(old, flip, new)
        for i, (o, f, n) in enumerate(rows):
            single = _stage(o, f, n)
            assert batch.flip[i, 0] == single.flip[0]
            assert batch.physical[i, 0] == single.physical[0]
            assert batch.n_set[i, 0] == single.n_set[0]
            assert batch.n_reset[i, 0] == single.n_reset[0]

    def test_batch_requires_2d(self):
        with pytest.raises(ValueError):
            read_stage_batch(
                np.zeros(3, dtype=np.uint64),
                np.zeros(3, dtype=bool),
                np.zeros(3, dtype=np.uint64),
            )
