"""Sweep service: tenancy, fairness, dedup, drain, and crash resume.

The load-bearing guarantees (ISSUE 8):

* two tenants submitting overlapping grids execute each unique cell
  exactly once, and every job's rows are byte-identical to a serial
  ``SweepEngine.run()`` of the same grid;
* deficit round robin bounds inter-tenant unfairness by the quantum —
  a big grid cannot starve a small one;
* admission control rejects queue overflow with a structured
  ``admission-rejected`` error carrying ``retry_after_s``, without
  affecting other tenants;
* ``drain`` finishes in-flight jobs and answers new submits with a
  structured ``draining`` + ``retry_after_s`` rejection;
* a server killed mid-job resumes from its journals re-executing zero
  completed cells.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.parallel import ResultCache, SweepEngine
from repro.service import GridSpec, ProtocolError, SweepService, job_id_for
from repro.service.jobs import Job, JobStore
from repro.service.protocol import (
    E_ADMISSION,
    E_DRAINING,
    decode_frame,
    encode_frame,
    request_frame,
)
from repro.service.scheduler import CellWork, Scheduler

REQUESTS = 60

# Overlap: the tetris x vips cell appears in both grids.
GRID_A = {
    "schemes": ["dcw", "tetris"],
    "workloads": ["dedup", "vips"],
    "requests_per_core": REQUESTS,
}
GRID_B = {
    "schemes": ["tetris"],
    "workloads": ["vips", "ferret"],
    "requests_per_core": REQUESTS,
}
GRID_SMALL = {
    "schemes": ["dcw"],
    "workloads": ["swaptions"],
    "requests_per_core": REQUESTS,
}


def serial_row_bytes(grid: dict) -> list[str]:
    """Canonical row serialization of a serial engine run of ``grid``."""
    import dataclasses

    spec = GridSpec.from_dict(grid)
    res = SweepEngine(
        requests_per_core=spec.requests_per_core,
        root_seed=spec.seed,
        workers=1,
        cache=False,
    ).run(spec.schemes, spec.workloads)
    res.raise_errors()
    return [json.dumps(dataclasses.asdict(r), sort_keys=True) for r in res.rows]


def row_bytes(rows: list[dict]) -> list[str]:
    return [json.dumps(r, sort_keys=True) for r in rows]


async def make_service(tmp_path, **kw) -> SweepService:
    kw.setdefault("cache", ResultCache(tmp_path / "cache"))
    svc = SweepService(state_dir=tmp_path / "state", fsync=False, **kw)
    await svc.start()
    return svc


async def rpc(sock_path, frame: dict) -> dict:
    """One request frame over a fresh unix connection; one checked reply."""
    reader, writer = await asyncio.open_unix_connection(str(sock_path))
    writer.write(encode_frame(frame))
    await writer.drain()
    line = await reader.readline()
    writer.close()
    await writer.wait_closed()
    return decode_frame(line)


def submit_frame(tenant: str, grid: dict) -> dict:
    return request_frame("submit", tenant=tenant, grid=grid)


def slow_cells(monkeypatch, delay_s: float = 0.05):
    """Patch cell execution with a floor latency (deterministic races)."""
    import repro.service.scheduler as sched_mod

    orig = sched_mod.execute_cell_payload

    def slow(payload):
        time.sleep(delay_s)
        return orig(payload)

    monkeypatch.setattr(sched_mod, "execute_cell_payload", slow)


# ----------------------------------------------------------------------
# Exactly-once execution + byte-identity across overlapping tenants.
# ----------------------------------------------------------------------
def test_two_tenants_overlap_exactly_once_and_byte_identical(tmp_path):
    async def run():
        svc = await make_service(tmp_path)
        server = await svc.serve_unix(tmp_path / "s.sock")
        try:
            ra, rb = await asyncio.gather(
                rpc(tmp_path / "s.sock", submit_frame("alice", GRID_A)),
                rpc(tmp_path / "s.sock", submit_frame("bob", GRID_B)),
            )
            assert ra["ok"] and rb["ok"]
            await asyncio.wait_for(svc.scheduler.wait_idle(), 120)
            sa = await rpc(
                tmp_path / "s.sock", request_frame("status", job=ra["job"])
            )
            sb = await rpc(
                tmp_path / "s.sock", request_frame("status", job=rb["job"])
            )
        finally:
            server.close()
            await server.wait_closed()
            await svc.shutdown()
        return svc, sa, sb

    svc, sa, sb = asyncio.run(run())
    assert sa["state"] == "done" and sb["state"] == "done"
    assert not sa["errors"] and not sb["errors"]
    # 4 + 2 cells with one overlap: exactly 5 unique executions, and the
    # shared cell was served to its second tenant by dedup or cache.
    counters = svc.scheduler.counter_values()
    assert counters["cells_executed"] == 5
    assert counters.get("cells_failed", 0) == 0
    jobs = list(svc.jobs.values())
    assert sum(j.executed_cells for j in jobs) == 5
    assert sum(j.cached_cells + j.deduped_cells for j in jobs) == 1
    # Every unique cell journaled exactly once.
    assert len(svc.cell_journal.load()) == 5
    # Rows byte-identical to a serial engine run of each grid.
    assert row_bytes(sa["rows"]) == serial_row_bytes(GRID_A)
    assert row_bytes(sb["rows"]) == serial_row_bytes(GRID_B)


def test_workers_gt1_supervised_batch_byte_identical(tmp_path):
    async def run():
        svc = await make_service(tmp_path, workers=2)
        try:
            reply = await svc._dispatch(submit_frame("alice", GRID_A), None)
            await asyncio.wait_for(svc.scheduler.wait_idle(), 180)
            return await svc._dispatch(
                request_frame("status", job=reply["job"]), None
            )
        finally:
            await svc.shutdown()

    status = asyncio.run(run())
    assert status["state"] == "done" and not status["errors"]
    assert row_bytes(status["rows"]) == serial_row_bytes(GRID_A)


# ----------------------------------------------------------------------
# DRR fairness bound.
# ----------------------------------------------------------------------
def _queued(key: str, tenant: str) -> CellWork:
    return CellWork(key=key, cache_key=None, payload=(0,), tenant=tenant)


def test_drr_bounds_unfairness_by_the_quantum():
    from repro.service.scheduler import TenantState

    sched = Scheduler(cache=None, cell_journal=None, workers=1, quantum=1.0)
    sched.tenants["big"] = TenantState("big")
    sched.tenants["small"] = TenantState("small")
    for i in range(8):
        sched.tenants["big"].queue.append(_queued(f"b{i}", "big"))
    for i in range(2):
        sched.tenants["small"].queue.append(_queued(f"s{i}", "small"))
    sched._active.extend(["big", "small"])

    picks = [sched._select_batch(1)[0].tenant for _ in range(10)]
    # While both tenants are backlogged, service alternates: the small
    # tenant's 2 cells are done within the first 4 selections (within
    # quantum=1 of equal share), despite an 8-cell backlog ahead of it.
    assert picks[:4].count("small") == 2
    assert picks[4:] == ["big"] * 6
    assert all(not ts.queue for ts in sched.tenants.values())


def test_drr_quantum_weights_throughput():
    from repro.service.scheduler import TenantState

    sched = Scheduler(cache=None, cell_journal=None, workers=1, quantum=0.5)
    sched.tenants["a"] = TenantState("a")
    sched.tenants["b"] = TenantState("b")
    for i in range(6):
        sched.tenants["a"].queue.append(_queued(f"a{i}", "a"))
        sched.tenants["b"].queue.append(_queued(f"b{i}", "b"))
    sched._active.extend(["a", "b"])
    picks = [sched._select_batch(1)[0].tenant for _ in range(12)]
    # Equal-quantum tenants stay within one cell of each other at every
    # prefix of the service order.
    for cut in range(1, 13):
        served = picks[:cut]
        assert abs(served.count("a") - served.count("b")) <= 1


# ----------------------------------------------------------------------
# Admission control.
# ----------------------------------------------------------------------
def test_admission_rejects_overflow_with_retry_after(tmp_path):
    async def run():
        svc = await make_service(tmp_path, max_queued_cells=2)
        try:
            with pytest.raises(ProtocolError) as excinfo:
                await svc._dispatch(submit_frame("greedy", GRID_A), None)
            # The rejected tenant left no partial state behind.
            assert not svc.jobs
            assert not svc.scheduler.inflight
            # Another tenant's small submit is unaffected.
            ok = await svc._dispatch(submit_frame("modest", GRID_SMALL), None)
            await asyncio.wait_for(svc.scheduler.wait_idle(), 120)
            return excinfo.value, ok
        finally:
            await svc.shutdown()

    exc, ok = asyncio.run(run())
    assert exc.code == E_ADMISSION
    assert isinstance(exc.retry_after_s, float) and exc.retry_after_s >= 0.0
    assert "limit 2" in exc.message
    assert ok["ok"]


# ----------------------------------------------------------------------
# Drain: finish in-flight, reject new work with structured retry-after.
# ----------------------------------------------------------------------
def test_drain_finishes_inflight_and_rejects_new_submits(tmp_path, monkeypatch):
    slow_cells(monkeypatch)

    async def run():
        svc = await make_service(tmp_path)
        try:
            accepted = await svc._dispatch(submit_frame("alice", GRID_A), None)
            drain = await svc._dispatch(request_frame("drain"), None)
            assert drain["draining"] is True
            assert drain["jobs_pending"] == 1
            with pytest.raises(ProtocolError) as excinfo:
                await svc._dispatch(submit_frame("bob", GRID_B), None)
            await asyncio.wait_for(svc.drained.wait(), 120)
            status = await svc._dispatch(
                request_frame("status", job=accepted["job"]), None
            )
            return excinfo.value, status
        finally:
            await svc.shutdown()

    exc, status = asyncio.run(run())
    assert exc.code == E_DRAINING
    assert isinstance(exc.retry_after_s, float) and exc.retry_after_s >= 1.0
    # The in-flight job finished completely and correctly.
    assert status["state"] == "done" and not status["errors"]
    assert row_bytes(status["rows"]) == serial_row_bytes(GRID_A)


# ----------------------------------------------------------------------
# Crash resume: zero re-execution of journaled cells.
# ----------------------------------------------------------------------
def test_restart_resumes_finished_job_with_zero_reexecution(tmp_path):
    async def crash_run():
        # A server that dies before the fire-and-forget "done" marker
        # lands: the job journal says pending, the cell journal has all
        # completions.
        svc = await make_service(tmp_path)
        svc.store.record_done = lambda job_id: None
        try:
            reply = await svc._dispatch(submit_frame("alice", GRID_A), None)
            await asyncio.wait_for(svc.scheduler.wait_idle(), 120)
            return reply["job"]
        finally:
            await svc.shutdown()

    async def restart_run():
        svc = await make_service(tmp_path)
        try:
            await asyncio.wait_for(svc.scheduler.wait_idle(), 120)
            return svc, dict(svc.jobs)
        finally:
            await svc.shutdown()

    job_id = asyncio.run(crash_run())
    svc2, jobs = asyncio.run(restart_run())
    assert list(jobs) == [job_id]
    job = jobs[job_id]
    assert job.state == "done"
    counters = svc2.scheduler.counter_values()
    assert counters.get("cells_executed", 0) == 0  # zero re-execution
    assert counters["cells_cached"] == 4
    assert row_bytes(job.ordered_rows()) == serial_row_bytes(GRID_A)


def test_restart_resumes_partial_job_executing_only_missing_cells(tmp_path):
    spec_full = GridSpec.from_dict(GRID_A)
    cache = ResultCache(tmp_path / "cache")
    state = tmp_path / "state"
    state.mkdir()

    async def resume():
        svc = SweepService(
            state_dir=state, cache=ResultCache(tmp_path / "cache"), fsync=False
        )
        await svc.start()
        try:
            await asyncio.wait_for(svc.scheduler.wait_idle(), 120)
            return svc, dict(svc.jobs)
        finally:
            await svc.shutdown()

    async def seed_half():
        # First life of the server: the dcw half of the grid completes,
        # then the process dies with the full 2x2 job accepted (its
        # "submitted" marker journaled) but never planned.
        svc = SweepService(state_dir=state, cache=cache, fsync=False)
        await svc.start()
        half = dict(GRID_A, schemes=["dcw"])
        try:
            await svc._dispatch(submit_frame("alice", half), None)
            await asyncio.wait_for(svc.scheduler.wait_idle(), 120)
        finally:
            await svc.shutdown()
        job = Job(
            job_id=job_id_for("alice", spec_full, svc.salt),
            tenant="alice",
            spec=spec_full,
            planned=[],
        )
        JobStore(state / "jobs.jsonl", fsync=False).record_submitted(job)
        return job.job_id

    job_id = asyncio.run(seed_half())
    svc2, jobs = asyncio.run(resume())
    full_job = jobs[job_id]
    assert full_job.state == "done"
    # Only the two tetris cells were missing; the two dcw cells resumed
    # from the journal without re-execution.
    counters = svc2.scheduler.counter_values()
    assert counters["cells_executed"] == 2
    assert full_job.cached_cells == 2
    assert row_bytes(full_job.ordered_rows()) == serial_row_bytes(GRID_A)


# ----------------------------------------------------------------------
# Idempotent resubmission, cancel, and watch streaming.
# ----------------------------------------------------------------------
def test_resubmitting_the_same_grid_is_idempotent(tmp_path):
    async def run():
        svc = await make_service(tmp_path)
        try:
            first = await svc._dispatch(submit_frame("alice", GRID_SMALL), None)
            await asyncio.wait_for(svc.scheduler.wait_idle(), 120)
            second = await svc._dispatch(submit_frame("alice", GRID_SMALL), None)
            return svc, first, second
        finally:
            await svc.shutdown()

    svc, first, second = asyncio.run(run())
    assert second["job"] == first["job"]
    assert second["resubmitted"] is True
    assert second["state"] == "done"
    assert svc.scheduler.counter_values()["cells_executed"] == 1


def test_cancel_withdraws_queued_cells_and_streams_terminal_event(
    tmp_path, monkeypatch
):
    slow_cells(monkeypatch)

    async def run():
        svc = await make_service(tmp_path)
        try:
            accepted = await svc._dispatch(submit_frame("alice", GRID_A), None)
            cancelled = await svc._dispatch(
                request_frame("cancel", job=accepted["job"]), None
            )
            status = await svc._dispatch(
                request_frame("status", job=accepted["job"]), None
            )
            await asyncio.wait_for(svc.scheduler.wait_idle(), 120)
            return svc, cancelled, status
        finally:
            await svc.shutdown()

    svc, cancelled, status = asyncio.run(run())
    assert cancelled["state"] == "cancelled"
    assert cancelled["cancelled_cells"] >= 1
    assert status["state"] == "cancelled"
    assert svc.scheduler.counter_values()["jobs_cancelled"] == 1
    # Cancel is terminal: a later completion of an executing cell must
    # not flip the job back.
    assert svc.jobs[cancelled["job"]].state == "cancelled"


def test_watch_streams_progress_to_done(tmp_path, monkeypatch):
    slow_cells(monkeypatch)

    async def run():
        svc = await make_service(tmp_path)
        server = await svc.serve_unix(tmp_path / "w.sock")
        try:
            accepted = await rpc(
                tmp_path / "w.sock", submit_frame("alice", GRID_SMALL)
            )
            reader, writer = await asyncio.open_unix_connection(
                str(tmp_path / "w.sock")
            )
            writer.write(
                encode_frame(request_frame("watch", job=accepted["job"]))
            )
            await writer.drain()
            events = []
            while True:
                frame = decode_frame(await reader.readline())
                events.append(frame)
                if frame.get("state") in ("done", "cancelled"):
                    break
            writer.close()
            await writer.wait_closed()
            status = await rpc(
                tmp_path / "w.sock", request_frame("status", job=accepted["job"])
            )
            return events, status
        finally:
            server.close()
            await server.wait_closed()
            await svc.shutdown()

    events, status = asyncio.run(run())
    assert events[0]["event"] == "snapshot"
    assert events[-1]["event"] == "done"
    assert events[-1]["state"] == "done"
    dones = [e["done"] for e in events if e.get("event") != "snapshot"]
    assert dones == sorted(dones)  # progress is monotone
    assert all("counters" in e for e in events[1:])
    assert row_bytes(status["rows"]) == serial_row_bytes(GRID_SMALL)


def test_status_summary_reports_tenants_and_counters(tmp_path):
    async def run():
        svc = await make_service(tmp_path)
        try:
            await svc._dispatch(submit_frame("alice", GRID_SMALL), None)
            await asyncio.wait_for(svc.scheduler.wait_idle(), 120)
            return await svc._dispatch(request_frame("status"), None)
        finally:
            await svc.shutdown()

    summary = asyncio.run(run())
    assert summary["draining"] is False
    assert summary["workers"] == 1
    assert len(summary["jobs"]) == 1
    assert summary["counters"]["jobs_done"] == 1
    assert "alice" in summary["tenants"]
