"""Tests for the gated write driver (paper Fig. 9)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pcm.write_driver import DriverCommand, WriteDriver

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
_MASK = (1 << 64) - 1


class TestDriverCommand:
    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            DriverCommand(unit=0, direction="sideways")

    @pytest.mark.parametrize("d", ["set", "reset", "both"])
    def test_accepts_valid(self, d):
        assert DriverCommand(unit=1, direction=d).direction == d


class TestProgEnable:
    @given(u64, u64)
    def test_xor_gate(self, old, new):
        enable = WriteDriver.prog_enable(old, new)
        assert int(enable) == old ^ new


class TestProgram:
    def setup_method(self):
        self.driver = WriteDriver()

    @given(u64, u64)
    def test_both_directions_complete_the_write(self, old, new):
        result, set_mask, reset_mask = self.driver.program(old, new, "both")
        assert int(result[0]) == new
        assert int(set_mask[0]) == ~old & new & _MASK
        assert int(reset_mask[0]) == old & ~new

    @given(u64, u64)
    def test_set_phase_only_raises_cells(self, old, new):
        result, set_mask, reset_mask = self.driver.program(old, new, "set")
        assert int(reset_mask[0]) == 0
        # Every programmed cell goes 0 -> 1, nothing falls.
        assert int(result[0]) & old == old
        assert int(result[0]) == old | (~old & new & _MASK)

    @given(u64, u64)
    def test_reset_phase_only_lowers_cells(self, old, new):
        result, set_mask, reset_mask = self.driver.program(old, new, "reset")
        assert int(set_mask[0]) == 0
        assert int(result[0]) & ~old & _MASK == 0
        assert int(result[0]) == old & ~(old & ~new)

    @given(u64, u64)
    def test_set_then_reset_equals_both(self, old, new):
        mid, _, _ = self.driver.program(old, new, "set")
        final, _, _ = self.driver.program(int(mid[0]), new, "reset")
        assert int(final[0]) == new

    @given(u64)
    def test_identity_write_programs_nothing(self, word):
        result, set_mask, reset_mask = self.driver.program(word, word, "both")
        assert int(set_mask[0]) == 0 and int(reset_mask[0]) == 0
        assert int(result[0]) == word

    def test_array_inputs(self):
        old = np.array([0b00, 0b11], dtype=np.uint64)
        new = np.array([0b01, 0b10], dtype=np.uint64)
        result, set_mask, reset_mask = self.driver.program(old, new, "both")
        assert result.tolist() == [1, 2]
        assert set_mask.tolist() == [1, 0]
        assert reset_mask.tolist() == [0, 1]
