"""Parallel sweep engine: determinism, caching, and failure capture.

The load-bearing guarantees (ISSUE 4):

* ``workers=N`` produces byte-identical rows to ``workers=1``;
* a cache-warm re-run produces byte-identical rows with zero DES
  invocations;
* a poisoned cell surfaces as a structured error row without aborting
  the rest of the grid.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.experiments.runner import run_schemes_on_workloads
from repro.parallel import (
    ResultCache,
    SweepCellError,
    SweepEngine,
    cache_disabled_by_env,
    derive_cell_seeds,
    parallel_map,
)

SCHEMES = ("dcw", "tetris")
WORKLOADS = ("dedup", "vips")
REQUESTS = 250


def row_bytes(rows) -> list[str]:
    """Canonical byte-level serialization of result rows."""
    return [
        json.dumps(dataclasses.asdict(r), sort_keys=True) for r in rows
    ]


@pytest.fixture(scope="module")
def serial_rows():
    eng = SweepEngine(requests_per_core=REQUESTS, workers=1, cache=False)
    res = eng.run(SCHEMES, WORKLOADS)
    res.raise_errors()
    return res.rows


# ----------------------------------------------------------------------
# Determinism.
# ----------------------------------------------------------------------
def test_parallel_rows_byte_identical_to_serial(serial_rows):
    eng = SweepEngine(requests_per_core=REQUESTS, workers=4, cache=False)
    res = eng.run(SCHEMES, WORKLOADS)
    res.raise_errors()
    assert res.stats.workers == 4
    assert row_bytes(res.rows) == row_bytes(serial_rows)


def test_cache_warm_rerun_is_byte_identical_with_zero_des(tmp_path, serial_rows):
    cache = ResultCache(tmp_path / "store")
    cold = SweepEngine(
        requests_per_core=REQUESTS, workers=2, cache=cache
    ).run(SCHEMES, WORKLOADS)
    cold.raise_errors()
    assert cold.stats.executed == len(cold.outcomes)
    assert cold.stats.cache_stores == len(cold.outcomes)

    warm = SweepEngine(
        requests_per_core=REQUESTS, workers=2, cache=ResultCache(tmp_path / "store")
    ).run(SCHEMES, WORKLOADS)
    warm.raise_errors()
    assert warm.stats.executed == 0, "warm re-run must not invoke the DES"
    assert warm.stats.cache_hits == len(warm.outcomes)
    assert all(o.cached for o in warm.outcomes)
    assert row_bytes(warm.rows) == row_bytes(serial_rows)


def test_runner_facade_parallel_matches_serial(serial_rows):
    rows = run_schemes_on_workloads(
        SCHEMES, WORKLOADS, requests_per_core=REQUESTS, workers=2, cache=False
    )
    assert row_bytes(rows) == row_bytes(serial_rows)


def test_rows_come_back_in_grid_order(serial_rows):
    assert [(r.workload, r.scheme) for r in serial_rows] == [
        (w, s) for w in WORKLOADS for s in SCHEMES
    ]


def test_multi_seed_grid_shape_and_determinism():
    eng = SweepEngine(requests_per_core=120, workers=2, cache=False)
    a = eng.run(("dcw",), ("dedup",), seeds=3)
    b = SweepEngine(requests_per_core=120, workers=1, cache=False).run(
        ("dcw",), ("dedup",), seeds=3
    )
    assert len(a.rows) == 3
    assert row_bytes(a.rows) == row_bytes(b.rows)
    seeds = [o.cell.seed for o in a.outcomes]
    assert len(set(seeds)) == 3, "replica seeds must be distinct"


def test_derive_cell_seeds_is_pure_and_distinct():
    assert derive_cell_seeds(7, 4) == derive_cell_seeds(7, 4)
    assert len(set(derive_cell_seeds(7, 16))) == 16
    assert derive_cell_seeds(7, 4) != derive_cell_seeds(8, 4)
    with pytest.raises(ValueError):
        derive_cell_seeds(7, 0)


# ----------------------------------------------------------------------
# Failure capture.
# ----------------------------------------------------------------------
def test_poisoned_cell_becomes_error_row_and_grid_survives():
    eng = SweepEngine(requests_per_core=120, workers=2, cache=False)
    res = eng.run(("dcw", "no_such_scheme"), ("dedup",))
    assert len(res.outcomes) == 2
    ok = [o for o in res.outcomes if o.row is not None]
    bad = [o for o in res.outcomes if o.error is not None]
    assert len(ok) == 1 and ok[0].cell.scheme == "dcw"
    assert len(bad) == 1 and bad[0].cell.scheme == "no_such_scheme"
    err = bad[0].error
    assert err.error_type and err.traceback_text
    assert "no_such_scheme" in err.format()
    with pytest.raises(SweepCellError, match="no_such_scheme"):
        res.raise_errors()


def test_poisoned_cell_survives_serially_too():
    res = SweepEngine(requests_per_core=120, workers=1, cache=False).run(
        ("dcw",), ("dedup", "not_a_workload")
    )
    assert res.stats.errors == 1
    assert len(res.rows) == 1


def test_errors_are_never_cached(tmp_path):
    cache = ResultCache(tmp_path / "store")
    eng = SweepEngine(requests_per_core=120, workers=1, cache=cache)
    eng.run(("no_such_scheme",), ("dedup",))
    assert cache.entries() == []


def test_runner_facade_raises_on_cell_failure():
    with pytest.raises(SweepCellError):
        run_schemes_on_workloads(
            ("no_such_scheme",), ("dedup",), requests_per_core=120, cache=False
        )


# ----------------------------------------------------------------------
# Cache behavior.
# ----------------------------------------------------------------------
def test_cache_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert cache_disabled_by_env()
    eng = SweepEngine(requests_per_core=120)
    assert eng.cache is None
    monkeypatch.delenv("REPRO_NO_CACHE")
    assert not cache_disabled_by_env()


def test_explicit_cache_instance_beats_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    cache = ResultCache(tmp_path / "store")
    eng = SweepEngine(requests_per_core=120, cache=cache)
    assert eng.cache is cache


def test_corrupt_cache_entry_is_a_miss_not_an_error(tmp_path):
    cache = ResultCache(tmp_path / "store")
    key = cache.cell_key(config_json="{}", trace_key="t", scheme="dcw")
    cache.put(key, {"x": 1})
    path = cache._path(key)
    path.write_text("{ not json", encoding="utf-8")
    assert cache.get(key) is None
    assert cache.stats.misses == 1


def test_cache_key_covers_every_input(tmp_path):
    cache = ResultCache(tmp_path / "store", salt="s1")
    base = dict(config_json="{}", trace_key="t", scheme="dcw")
    k = cache.cell_key(**base)
    assert cache.cell_key(**{**base, "scheme": "tetris"}) != k
    assert cache.cell_key(**{**base, "trace_key": "u"}) != k
    assert cache.cell_key(**{**base, "config_json": '{"a":1}'}) != k
    assert ResultCache(tmp_path / "store", salt="s2").cell_key(**base) != k
    # and the same inputs always produce the same key
    assert cache.cell_key(**base) == k


def test_cache_clear_and_report(tmp_path):
    cache = ResultCache(tmp_path / "store", salt="s1")
    for scheme in ("dcw", "dcw", "tetris"):
        key = cache.cell_key(
            config_json="{}", trace_key=f"t{cache.stats.stores}", scheme=scheme
        )
        cache.put(key, {"x": 1}, meta={"scheme": scheme, "salt": "s1"})
    report = cache.report()
    assert report["entries"] == 3
    assert report["by_scheme"] == {"dcw": 2, "tetris": 1}
    assert report["current_code_version"] == 3
    assert cache.clear() == 3
    assert cache.entries() == []


# ----------------------------------------------------------------------
# parallel_map (ablation / crossover backbone).
# ----------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise RuntimeError(f"boom {x}")


def test_parallel_map_preserves_order():
    items = list(range(20))
    assert parallel_map(_square, items, workers=1) == [x * x for x in items]
    assert parallel_map(_square, items, workers=4) == [x * x for x in items]


def test_parallel_map_propagates_errors():
    with pytest.raises(RuntimeError, match="boom"):
        parallel_map(_boom, [1, 2], workers=2)


# ----------------------------------------------------------------------
# Satellite: NaN normalization against a degenerate baseline.
# ----------------------------------------------------------------------
def test_normalized_zero_baseline_is_nan_not_zero():
    from repro.experiments.runner import ExperimentResult

    make = lambda **kw: ExperimentResult(  # noqa: E731
        workload="w", scheme="s", read_latency_ns=kw.get("read", 1.0),
        write_latency_ns=1.0, ipc=1.0, runtime_ns=1.0,
        mean_write_units=1.0, mean_write_energy=1.0,
        forwarded_reads=0, events=0,
    )
    degenerate = ExperimentResult(
        workload="w", scheme="dcw", read_latency_ns=0.0, write_latency_ns=0.0,
        ipc=0.0, runtime_ns=0.0, mean_write_units=0.0, mean_write_energy=0.0,
        forwarded_reads=0, events=0,
    )
    norm = make().normalized(degenerate)
    assert all(math.isnan(v) for v in norm.values())


def test_format_table_renders_nan_as_na():
    from repro.analysis.report import format_table

    out = format_table(["a"], [[math.nan]])
    assert "n/a" in out and "nan" not in out
