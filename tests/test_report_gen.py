"""Tests for the Markdown report generator and its CLI command."""

from repro.cli import main
from repro.experiments.report_gen import generate_report


class TestGenerateReport:
    def test_report_contains_all_sections(self, tmp_path):
        out = generate_report(tmp_path / "r.md", requests_per_core=200)
        text = out.read_text()
        for heading in (
            "# Tetris Write — reproduction report",
            "## Figure 3",
            "## Figure 10",
            "## Figure 11",
            "## Figure 12",
            "## Figure 13",
            "## Figure 14",
            "## Ablations",
            "### power budget",
            "### mobile write-unit width",
        ):
            assert heading in text, heading

    def test_report_has_all_workloads(self, tmp_path):
        out = generate_report(tmp_path / "r.md", requests_per_core=200)
        text = out.read_text()
        for wl in ("blackscholes", "vips", "ferret", "dedup"):
            assert wl in text

    def test_cli_report_command(self, tmp_path, capsys):
        target = tmp_path / "REPORT.md"
        assert main(["report", "--requests", "200", "--out", str(target)]) == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out
