"""Tests for the PreSET extension scheme (paper ref [23])."""

import numpy as np
import pytest

from repro.experiments.fullsystem import precompute_write_service, run_fullsystem
from repro.pcm.state import LineState
from repro.schemes import get_scheme
from repro.trace.synthetic import generate_trace


class TestPreSET:
    def test_registered(self):
        assert get_scheme("preset").name == "preset"

    def test_write_commits_logical_data(self, rng, line8):
        scheme = get_scheme("preset")
        state = LineState.from_logical(line8.copy())
        new = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
        scheme.write(state, new)
        assert np.array_equal(state.logical, new)

    def test_resets_equal_zero_count(self, line8):
        scheme = get_scheme("preset")
        state = LineState.from_logical(line8.copy())
        new = np.full(8, (1 << 48) - 1, dtype=np.uint64)  # 16 zeros per unit
        out = scheme.write(state, new)
        assert out.n_set == 0
        assert out.n_reset == 8 * 16

    def test_all_ones_write_is_free(self, line8):
        scheme = get_scheme("preset")
        state = LineState.from_logical(line8.copy())
        all_ones = np.full(8, (1 << 64) - 1, dtype=np.uint64)
        out = scheme.write(state, all_ones)
        assert out.units == 0.0
        assert out.n_reset == 0

    def test_faster_than_dcw_but_energy_hungry(self, rng, line8):
        new = line8 ^ np.uint64(0xFF)
        preset = get_scheme("preset").write(LineState.from_logical(line8.copy()), new)
        dcw = get_scheme("dcw").write(LineState.from_logical(line8.copy()), new)
        assert preset.service_ns < dcw.service_ns
        assert preset.energy > dcw.energy  # pays SET+RESET for every 0-cell

    def test_background_debt_tracked(self, line8):
        scheme = get_scheme("preset")
        state = LineState.from_logical(line8.copy())
        scheme.write(state, np.zeros(8, dtype=np.uint64))
        assert scheme.preset_cells == 512

    def test_worst_case_bound(self, rng):
        scheme = get_scheme("preset")
        bound = scheme.worst_case_units()
        for _ in range(10):
            old = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
            new = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
            out = scheme.write(LineState.from_logical(old), new)
            assert out.units <= bound + 1e-9

    def test_precompute_and_fullsystem(self):
        trace = generate_trace("dedup", requests_per_core=150, seed=6)
        table = precompute_write_service(trace, "preset")
        assert table.service_ns.shape == (trace.n_writes,)
        res = run_fullsystem(trace, "preset", table=table)
        n = res.controller.read_latency.count + res.controller.write_latency.count
        assert n == len(trace)

    def test_preset_write_latency_beats_dcw_system_level(self):
        trace = generate_trace("vips", requests_per_core=300, seed=6)
        dcw = run_fullsystem(trace, "dcw")
        preset = run_fullsystem(trace, "preset")
        assert preset.mean_write_latency_ns < dcw.mean_write_latency_ns
