"""Documentation executability: doctests and the quickstart example.

The README's quickstart snippet and the package docstring's example are
load-bearing documentation — they must keep running; likewise the
fastest example script end-to-end.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

REPO = Path(__file__).resolve().parent.parent


class TestDocstringExamples:
    def test_package_quickstart_snippet(self):
        """The `repro` package docstring's quick-start code, verbatim."""
        from repro import analyze, default_config, read_stage
        from repro.pcm.state import LineState

        cfg = default_config()
        old = LineState.from_logical(np.zeros(8, dtype=np.uint64))
        new = np.full(8, 0x0F0F, dtype=np.uint64)
        rs = read_stage(old.physical, old.flip, new)
        sched = analyze(
            rs.n_set, rs.n_reset,
            K=cfg.K, L=cfg.L, power_budget=cfg.bank_power_budget,
        )
        assert sched.service_time_ns(cfg.timings.t_set_ns) > 0

    def test_readme_quickstart_snippet(self):
        """The README's quickstart, verbatim."""
        from repro import analyze, default_config, read_stage
        from repro.pcm.state import LineState

        cfg = default_config()
        line = LineState.from_logical(np.zeros(8, dtype=np.uint64))
        new = np.full(8, 0x0F0F_0F0F, dtype=np.uint64)
        rs = read_stage(line.physical, line.flip, new)
        sched = analyze(
            rs.n_set, rs.n_reset,
            K=cfg.K, L=cfg.L, power_budget=cfg.bank_power_budget,
        )
        assert sched.result >= 1


class TestExampleScripts:
    def test_quickstart_example_runs(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "examples" / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr[-1000:]
        assert "tetris" in proc.stdout

    def test_timing_diagram_example_runs(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "examples" / "timing_diagram.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr[-1000:]
        assert "result=2" in proc.stdout  # the Fig-4 outcome


class TestToolScripts:
    def test_api_doc_generator_runs(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_api_docs.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr[-1000:]
        api = (REPO / "docs" / "API.md").read_text()
        assert "repro.core.analysis" in api
        assert "TetrisScheduler" in api
