"""Tests for the TetrisSchedule datatypes and their validation."""

import numpy as np
import pytest

from repro.core.schedule import ScheduledOp, TetrisSchedule


def make_sched(**kw):
    defaults = dict(K=8, power_budget=32.0)
    defaults.update(kw)
    return TetrisSchedule(**defaults)


class TestScheduledOp:
    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            ScheduledOp(unit=0, kind="bogus", slot=0, current=1.0, n_bits=1)

    def test_rejects_negative_slot(self):
        with pytest.raises(ValueError):
            ScheduledOp(unit=0, kind="write1", slot=-1, current=1.0, n_bits=1)

    def test_chunk_defaults_to_zero(self):
        op = ScheduledOp(unit=0, kind="write0", slot=0, current=1.0, n_bits=1)
        assert op.chunk == 0


class TestServiceTime:
    def test_equation5(self):
        sched = make_sched(result=2, subresult=3)
        assert sched.service_units() == pytest.approx(2 + 3 / 8)
        assert sched.service_time_ns(430.0) == pytest.approx((2 + 3 / 8) * 430.0)

    def test_total_sub_slots(self):
        sched = make_sched(result=2, subresult=3)
        assert sched.total_sub_slots == 19


class TestOccupancy:
    def test_write1_spans_K_slots(self):
        sched = make_sched(result=1)
        sched.write1_queue.append(
            ScheduledOp(unit=0, kind="write1", slot=0, current=5.0, n_bits=5)
        )
        occ = sched.occupancy()
        assert occ.shape == (8,)
        assert (occ == 5.0).all()

    def test_write0_single_slot(self):
        sched = make_sched(result=1)
        sched.write1_queue.append(
            ScheduledOp(unit=0, kind="write1", slot=0, current=5.0, n_bits=5)
        )
        sched.write0_queue.append(
            ScheduledOp(unit=1, kind="write0", slot=3, current=4.0, n_bits=2)
        )
        occ = sched.occupancy()
        assert occ[3] == 9.0
        assert occ[2] == 5.0

    def test_empty_schedule_occupancy(self):
        assert make_sched().occupancy().size == 0


class TestValidation:
    def test_detects_budget_violation(self):
        sched = make_sched(result=1)
        sched.write1_queue.append(
            ScheduledOp(unit=0, kind="write1", slot=0, current=40.0, n_bits=40)
        )
        with pytest.raises(AssertionError):
            sched.validate()

    def test_detects_out_of_range_write1(self):
        sched = make_sched(result=1)
        sched.write1_queue.append(
            ScheduledOp(unit=0, kind="write1", slot=5, current=1.0, n_bits=1)
        )
        with pytest.raises(AssertionError):
            sched.validate()

    def test_detects_out_of_range_write0(self):
        sched = make_sched(result=1, subresult=0)
        sched.write0_queue.append(
            ScheduledOp(unit=0, kind="write0", slot=8, current=1.0, n_bits=1)
        )
        with pytest.raises(AssertionError):
            sched.validate()

    def test_detects_duplicate_unit(self):
        sched = make_sched(result=2)
        for slot in (0, 1):
            sched.write1_queue.append(
                ScheduledOp(unit=0, kind="write1", slot=slot, current=1.0, n_bits=1)
            )
        with pytest.raises(AssertionError):
            sched.validate()

    def test_chunks_of_same_unit_allowed(self):
        sched = make_sched(result=2)
        for slot, chunk in ((0, 0), (1, 1)):
            sched.write1_queue.append(
                ScheduledOp(
                    unit=0, kind="write1", slot=slot, current=1.0, n_bits=1,
                    chunk=chunk,
                )
            )
        sched.validate()  # no error
