"""Scheme zoo (ISSUE 10): WIRE / DATACON / PALP behavior and routing.

Covers the cross-paper schemes' headline guarantees at unit level —
WIRE's energy dominance over Flip-N-Write, DATACON's dirty-unit
counting, PALP's min-of-two-plans packing — plus the fastpath envelope
routing of unpriced schemes (``palp`` is deliberately DES-only until a
vectorized pricer for its two-plan packing lands).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import default_config
from repro.fastpath import FastpathEnvelopeError, PRICED_SCHEMES, classify
from repro.oracle import analytic
from repro.parallel import ResultCache, SweepEngine
from repro.pcm.state import LineState
from repro.schemes import SCHEME_REGISTRY, ZOO_SCHEMES, get_scheme

T_READ, T_RESET, T_SET = 50.0, 53.0, 430.0
REQUESTS = 250

ALL_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


@pytest.fixture
def cfg():
    return default_config()


def _random_line(rng, units=8):
    physical = rng.integers(0, 2**64, size=units, dtype=np.uint64)
    flip = rng.integers(0, 2, size=units).astype(bool)
    new = rng.integers(0, 2**64, size=units, dtype=np.uint64)
    return physical, flip, new


class TestZooRegistry:
    def test_zoo_schemes_registered(self):
        for name in ZOO_SCHEMES:
            assert name in SCHEME_REGISTRY

    def test_registry_has_eleven_schemes(self):
        assert len(SCHEME_REGISTRY) == 11

    def test_zoo_analytic_coverage(self, cfg):
        point = analytic.OperatingPoint.from_config(cfg)
        for name in ZOO_SCHEMES:
            scheme = get_scheme(name, cfg)
            assert analytic.worst_case_units(name, point) == pytest.approx(
                scheme.worst_case_units()
            )


class TestWIRE:
    def test_units_are_fnw_constant(self, cfg):
        rng = np.random.default_rng(7)
        for _ in range(10):
            physical, flip, new = _random_line(rng)
            out = get_scheme("wire", cfg).write(
                LineState(physical=physical, flip=flip), new
            )
            assert out.units == 4.0
            assert out.service_ns == pytest.approx(T_READ + 4 * T_SET)

    def test_energy_never_exceeds_fnw(self, cfg):
        rng = np.random.default_rng(11)
        for _ in range(200):
            physical, flip, new = _random_line(rng)
            outs = {
                n: get_scheme(n, cfg).write(
                    LineState(physical=physical.copy(), flip=flip.copy()), new
                )
                for n in ("wire", "flip_n_write")
            }
            assert outs["wire"].energy <= outs["flip_n_write"].energy + 1e-9

    def test_cost_choice_beats_count_choice_strictly(self, cfg):
        # 32/32 count tie where the straight encoding is 32 SETs but the
        # inverted one is 32 RESETs: FNW's count rule keeps straight
        # (not > N/2), WIRE's cost rule flips and pays ~4x less.
        old = np.zeros(8, dtype=np.uint64)
        old[0] = np.uint64(0xFFFF_FFFF_0000_0000)
        new = old.copy()
        new[0] = ALL_ONES
        outs = {
            n: get_scheme(n, cfg).write(LineState.from_logical(old.copy()), new)
            for n in ("wire", "flip_n_write")
        }
        em = get_scheme("wire", cfg).energy_model
        assert outs["flip_n_write"].flipped_units == 0
        assert outs["flip_n_write"].n_set == 32
        assert outs["wire"].flipped_units == 1
        assert outs["wire"].n_reset == 32 and outs["wire"].n_set == 0
        assert outs["wire"].energy == pytest.approx(
            32 * em.e_reset + em.read_energy_per_line
        )
        assert outs["wire"].energy < outs["flip_n_write"].energy

    def test_logical_roundtrip(self, cfg):
        rng = np.random.default_rng(3)
        physical, flip, new = _random_line(rng)
        state = LineState(physical=physical, flip=flip)
        get_scheme("wire", cfg).write(state, new)
        assert np.array_equal(state.logical, new)


class TestDATACON:
    def test_dirty_unit_counting(self, cfg, rng):
        old = rng.integers(0, 2**64, size=8, dtype=np.uint64)
        new = old.copy()
        new[0] ^= np.uint64(0b111)
        new[5] ^= np.uint64(0xFF << 10)
        out = get_scheme("datacon", cfg).write(LineState.from_logical(old), new)
        assert out.units == 2.0  # two dirty units, one t_set share each
        assert out.service_ns == pytest.approx(T_READ + 2 * T_SET)
        assert out.n_set + out.n_reset == 11

    def test_silent_write_has_zero_write_stage(self, cfg, rng):
        data = rng.integers(0, 2**64, size=8, dtype=np.uint64)
        out = get_scheme("datacon", cfg).write(LineState.from_logical(data), data)
        assert out.units == 0.0
        assert out.service_ns == pytest.approx(T_READ)

    def test_fully_dirty_line_is_conventional(self, cfg):
        old = np.zeros(8, dtype=np.uint64)
        new = np.full(8, ALL_ONES, dtype=np.uint64)
        out = get_scheme("datacon", cfg).write(LineState.from_logical(old), new)
        assert out.units == 8.0  # Eq. 1's constant
        assert out.n_set == 8 * 64

    def test_normalizes_flipped_leftovers(self, cfg, rng):
        # Writing through a flip-capable scheme's leftover inverted unit:
        # DATACON compares logical views, stores plain.
        physical, _, new = _random_line(rng)
        flip = np.zeros(8, dtype=bool)
        flip[2] = True
        state = LineState(physical=physical, flip=flip)
        get_scheme("datacon", cfg).write(state, new)
        assert np.array_equal(state.logical, new)
        assert not state.flip.any()

    def test_units_bounded_by_conventional_at_mobile_point(self):
        # write_units=4 < data_units=8: each dirty unit costs half a
        # write unit, so even 8 dirty units stay at Eq. 1's 4.
        point = analytic.OperatingPoint(write_units=4, data_units=8)
        full = analytic.datacon_units([1] * 8, [0] * 8, point)
        assert full == pytest.approx(4.0)
        assert analytic.datacon_units([0, 3], [1, 0], point) == pytest.approx(1.0)


class TestPALP:
    def test_never_worse_than_tetris(self, cfg):
        rng = np.random.default_rng(17)
        for _ in range(100):
            physical, flip, new = _random_line(rng)
            outs = {
                n: get_scheme(n, cfg).write(
                    LineState(physical=physical.copy(), flip=flip.copy()), new
                )
                for n in ("palp", "tetris")
            }
            assert outs["palp"].units <= outs["tetris"].units + 1e-9
            assert outs["palp"].service_ns <= outs["tetris"].service_ns + 1e-9

    def test_silent_write(self, cfg, rng):
        data = rng.integers(0, 2**64, size=8, dtype=np.uint64)
        out = get_scheme("palp", cfg).write(LineState.from_logical(data), data)
        assert out.units == 0.0
        assert out.service_ns == pytest.approx(T_READ + cfg.analysis_overhead_ns)

    def test_partition_count_validation(self, cfg):
        with pytest.raises(ValueError):
            get_scheme("palp", cfg, partitions=0)

    def test_more_partitions_still_bounded_by_serial(self, cfg):
        rng = np.random.default_rng(23)
        tetris = get_scheme("tetris", cfg)
        palp4 = get_scheme("palp", cfg, partitions=4)
        for _ in range(50):
            physical, flip, new = _random_line(rng)
            t = tetris.write(LineState(physical=physical.copy(), flip=flip.copy()), new)
            p = palp4.write(LineState(physical=physical.copy(), flip=flip.copy()), new)
            assert p.units <= t.units + 1e-9

    def test_infeasible_sub_budget_falls_back_to_serial(self, cfg):
        # budget/partitions below one RESET's current: only the serial
        # plan exists, so PALP degenerates to Tetris exactly.
        scheme = get_scheme("palp", cfg, partitions=256)
        assert not scheme.partition_feasible
        rng = np.random.default_rng(29)
        physical, flip, new = _random_line(rng)
        p = scheme.write(LineState(physical=physical.copy(), flip=flip.copy()), new)
        t = get_scheme("tetris", cfg).write(
            LineState(physical=physical.copy(), flip=flip.copy()), new
        )
        assert p.units == pytest.approx(t.units)

    def test_analytic_matches_scheme_with_nondefault_partitions(self, cfg):
        point = analytic.OperatingPoint.from_config(cfg)
        rng = np.random.default_rng(31)
        scheme = get_scheme("palp", cfg, partitions=4)
        for _ in range(25):
            n_set = rng.integers(0, 17, size=8)
            n_reset = rng.integers(0, 32 - n_set.max() + 1, size=8)
            expected = analytic.palp_units(
                n_set.tolist(), n_reset.tolist(), point, partitions=4
            )
            got = min(
                scheme.serial_scheduler.schedule(n_set, n_reset).service_units(),
                scheme._partitioned_units(n_set, n_reset),
            )
            assert got == pytest.approx(expected)


class TestUnpricedSchemeRouting:
    """Fastpath envelope routing for schemes without a pricer (palp)."""

    def test_palp_classifies_outside_with_reason_tag(self):
        assert "palp" not in PRICED_SCHEMES
        decision = classify(default_config(), "palp")
        assert not decision.inside
        assert decision.reasons == ("unpriced-scheme",)

    def test_force_on_unpriced_scheme_is_structured_error(self):
        eng = SweepEngine(
            requests_per_core=REQUESTS, cache=False, fastpath="force"
        )
        with pytest.raises(FastpathEnvelopeError) as exc:
            eng.plan(("palp",), ("dedup",))
        assert exc.value.scheme == "palp"
        assert "unpriced-scheme" in exc.value.reasons

    def test_auto_routes_to_des_with_per_lane_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        eng = SweepEngine(
            requests_per_core=REQUESTS, cache=cache, fastpath="auto",
            recheck_fraction=0.0,
        )
        res = eng.run(("palp", "wire"), ("dedup",))
        res.raise_errors()
        assert res.stats.cells == 2
        assert res.stats.des_cells == 1
        assert res.stats.fastpath_cells == 1
        by = {c["scheme"]: c for c in res.certificate["cells"]}
        assert by["palp"]["lane"] == "des"
        assert by["palp"]["reasons"] == ["unpriced-scheme"]
        assert by["wire"]["lane"] == "fastpath"
        rows = {r.scheme: r for r in res.rows}
        assert rows["palp"].events > 0  # really simulated
        assert rows["wire"].events == 0  # analytically priced

        # No cache-lane aliasing: the two cells live under distinct
        # lanes, and a re-run is served from the right one for each.
        assert cache.report()["by_lane"] == {"des": 1, "fastpath": 1}
        res2 = SweepEngine(
            requests_per_core=REQUESTS, cache=cache, fastpath="auto",
            recheck_fraction=0.0,
        ).run(("palp", "wire"), ("dedup",))
        res2.raise_errors()
        assert res2.stats.cache_hits == 2
        assert res2.stats.executed == 0
