"""Tests for the adaptive-analysis fast path and the M/D/1 validation
of the DES queueing behaviour."""

import math

import numpy as np
import pytest

from repro.config import MemCtrlConfig, default_config
from repro.memctrl.controller import MemoryController
from repro.memctrl.request import MemRequest, ReqKind
from repro.pcm.state import LineState
from repro.schemes import get_scheme
from repro.sim.engine import Simulator


class TestAdaptiveAnalysis:
    def test_fast_path_on_trivial_write(self, line8):
        scheme = get_scheme("tetris", adaptive_analysis=True)
        new = line8 ^ np.uint64(0b11)  # 2 changed bits
        out = scheme.write(LineState.from_logical(line8.copy()), new)
        assert scheme.fast_path_hits == 1
        assert out.analysis_ns == pytest.approx(10.0)

    def test_slow_path_on_heavy_write(self, rng, line8):
        scheme = get_scheme("tetris", adaptive_analysis=True)
        new = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
        out = scheme.write(LineState.from_logical(line8.copy()), new)
        # A random full rewrite changes ~256 cells: no single-unit fit.
        assert scheme.fast_path_hits == 0
        assert out.analysis_ns == pytest.approx(102.5)

    def test_disabled_by_default(self, line8):
        scheme = get_scheme("tetris")
        new = line8 ^ np.uint64(0b11)
        out = scheme.write(LineState.from_logical(line8.copy()), new)
        assert out.analysis_ns == pytest.approx(102.5)

    def test_fast_path_never_changes_units(self, rng, line8):
        """The fast path skips sorting, not scheduling: unit counts are
        identical with and without it."""
        plain = get_scheme("tetris")
        fast = get_scheme("tetris", adaptive_analysis=True)
        for _ in range(10):
            new = line8 ^ rng.integers(0, 1 << 16, size=8, dtype=np.uint64)
            a = plain.write(LineState.from_logical(line8.copy()), new)
            b = fast.write(LineState.from_logical(line8.copy()), new)
            assert a.units == b.units

    def test_common_case_rate_matches_observation1(self, rng):
        """At the Fig-3 average profile (9.6 changed bits per unit), the
        trivial-schedule fast path covers the vast majority of writes."""
        scheme = get_scheme("tetris", adaptive_analysis=True)
        n = 200
        for _ in range(n):
            old = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
            state = LineState.from_logical(old)
            flips = np.zeros(8, dtype=np.uint64)
            for u in range(8):
                k = min(int(rng.poisson(9.6)), 30)
                bits = rng.choice(64, size=k, replace=False)
                flips[u] = np.bitwise_or.reduce(
                    np.uint64(1) << bits.astype(np.uint64)
                ) if k else np.uint64(0)
            scheme.write(state, old ^ flips)
        assert scheme.fast_path_hits / n > 0.5


class TestMD1Validation:
    """The controller's queueing must match M/D/1 theory.

    One bank, deterministic service D, Poisson arrivals of rate lam:
    mean wait W = lam * D^2 / (2 (1 - rho)).  We drive the raw
    controller with exponential inter-arrivals and compare.
    """

    class FlatService:
        def __init__(self, d):
            self.d = d

        def read_ns(self, req):
            return self.d

        def write_ns(self, req):
            return self.d

    @pytest.mark.parametrize("rho", [0.3, 0.6])
    def test_md1_mean_wait(self, rho):
        D = 50.0
        lam = rho / D  # arrivals per ns
        rng = np.random.default_rng(42)
        n = 12000

        cfg = default_config().replace(
            organization=default_config().organization.__class__(num_banks=1),
            memctrl=MemCtrlConfig(read_queue_entries=4096),
        )
        sim = Simulator()
        ctrl = MemoryController(
            sim, cfg, self.FlatService(D), enable_forwarding=False
        )
        t = 0.0
        for i in range(n):
            t += float(rng.exponential(1.0 / lam))
            sim.at(
                t,
                lambda i=i: ctrl.submit(
                    MemRequest(req_id=i, kind=ReqKind.READ, core=0,
                               line=0, bank=0)
                ),
            )
        sim.run()
        measured_wait = ctrl.stats.read_wait.mean
        theory = lam * D * D / (2 * (1 - rho))
        assert measured_wait == pytest.approx(theory, rel=0.15)
