"""Property-based invariants across all schemes (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pcm.state import LineState
from repro.schemes import ALL_SCHEMES, get_scheme

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
line = st.lists(u64, min_size=8, max_size=8).map(
    lambda xs: np.array(xs, dtype=np.uint64)
)


@settings(max_examples=40, deadline=None)
@given(line, line)
@pytest.mark.parametrize("name", ALL_SCHEMES)
def test_write_commits_logical_data(name, old, new):
    """After any write, reading the line back yields the written data."""
    state = LineState.from_logical(old.copy())
    get_scheme(name).write(state, new)
    assert np.array_equal(state.logical, new)


@settings(max_examples=40, deadline=None)
@given(line, line)
@pytest.mark.parametrize("name", ALL_SCHEMES)
def test_outcome_fields_consistent(name, old, new):
    """Service decomposition and counts are internally consistent."""
    scheme = get_scheme(name)
    out = scheme.write(LineState.from_logical(old.copy()), new)
    assert out.service_ns == pytest.approx(
        out.read_ns + out.analysis_ns + out.units * 430.0
    )
    assert out.n_set >= 0 and out.n_reset >= 0
    assert out.n_set + out.n_reset <= 512
    assert out.energy >= 0.0


@settings(max_examples=40, deadline=None)
@given(line, line)
def test_flip_family_counts_bounded_per_unit(old, new):
    """Flip-based schemes program at most half of every unit's cells."""
    scheme = get_scheme("tetris")
    out = scheme.write(LineState.from_logical(old.copy()), new)
    assert out.n_set + out.n_reset <= 8 * 32


@settings(max_examples=40, deadline=None)
@given(line, line)
def test_tetris_beats_or_ties_three_stage_units(old, new):
    """Tetris's measured unit count never exceeds Three-Stage-Write's
    worst case at the paper's operating point (the scheduling can only
    exploit slack, never create more work: write-1s fit in at most
    ceil(sum/budget) <= 2 units and write-0s add at most 8 sub-slots)."""
    tetris = get_scheme("tetris")
    three = get_scheme("three_stage")
    out_t = tetris.write(LineState.from_logical(old.copy()), new)
    assert out_t.units <= three.worst_case_units() + 1e-9


@settings(max_examples=40, deadline=None)
@given(line, line, line)
def test_dcw_energy_additivity(old, mid, new):
    """Writing old->mid->new costs at least as much as old->new directly
    in programmed cells (triangle inequality of Hamming distance)."""
    scheme = get_scheme("dcw")
    s1 = LineState.from_logical(old.copy())
    o1 = scheme.write(s1, mid)
    o2 = scheme.write(s1, new)
    s2 = LineState.from_logical(old.copy())
    direct = scheme.write(s2, new)
    two_hop = o1.n_set + o1.n_reset + o2.n_set + o2.n_reset
    assert two_hop >= direct.n_set + direct.n_reset


@settings(max_examples=40, deadline=None)
@given(line, line)
def test_idempotent_rewrite_is_free_for_comparison_schemes(old, new):
    """Writing the same data twice: the second write programs nothing
    under every read-before-write scheme."""
    for name in ("dcw", "flip_n_write", "three_stage", "tetris"):
        state = LineState.from_logical(old.copy())
        scheme = get_scheme(name)
        scheme.write(state, new)
        again = scheme.write(state, new)
        assert again.n_set == 0 and again.n_reset == 0, name


@settings(max_examples=40, deadline=None)
@given(line, line)
def test_tetris_zero_write_units_iff_no_cell_programs(old, new):
    """Zero write units exactly when no *cell* is programmed.  Note this
    is weaker than "logical data unchanged": a unit rewritten with its
    exact complement is absorbed entirely by the flip tag (hypothesis
    found that edge case), costing no array programs at all."""
    scheme = get_scheme("tetris")
    state = LineState.from_logical(old.copy())
    out = scheme.write(state, new)
    if out.n_set + out.n_reset == 0:
        assert out.units == 0.0
    else:
        assert out.units > 0.0
    assert np.array_equal(state.logical, new)
