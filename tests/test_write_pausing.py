"""Tests for write pausing (the refs [23-24] controller extension)."""

import pytest

from repro.config import MemCtrlConfig, default_config
from repro.memctrl.controller import MemoryController
from repro.memctrl.request import MemRequest, ReqKind
from repro.sim.engine import Simulator


class FlatService:
    def __init__(self, read=50.0, write=3000.0):
        self.read, self.write = read, write

    def read_ns(self, req):
        return self.read

    def write_ns(self, req):
        return self.write


def make(sim, **mc):
    defaults = dict(
        opportunistic_drain=True,  # let the write start immediately
        write_pausing=True,
        pause_overhead_ns=10.0,
        pause_threshold_ns=100.0,
    )
    defaults.update(mc)
    cfg = default_config().replace(memctrl=MemCtrlConfig(**defaults))
    return MemoryController(sim, cfg, FlatService(), enable_forwarding=False)


def read_req(i, line, done=None):
    return MemRequest(req_id=i, kind=ReqKind.READ, core=0, line=line,
                      bank=line % 8, on_done=done)


def write_req(i, line):
    return MemRequest(req_id=i, kind=ReqKind.WRITE, core=0, line=line,
                      bank=line % 8, write_idx=0)


class TestPausing:
    def test_read_preempts_inflight_write(self):
        sim = Simulator()
        ctrl = make(sim)
        done = []
        ctrl.submit(write_req(1, 0))
        sim.run(until=500.0)          # write in flight (3000 ns long)
        ctrl.submit(read_req(2, 8, done.append))  # same bank 0
        sim.run()
        assert ctrl.stats.write_pauses == 1
        # The read finished long before the write would have (t=3000).
        assert done[0].finish_ns < 1000.0

    def test_write_resumes_and_completes(self):
        sim = Simulator()
        ctrl = make(sim)
        ctrl.submit(write_req(1, 0))
        sim.run(until=500.0)
        ctrl.submit(read_req(2, 8))
        sim.run()
        assert ctrl.idle
        assert ctrl.stats.write_latency.count == 1
        # Completion pushed out by the read + the re-ramp overhead.
        assert ctrl.stats.write_latency.max == pytest.approx(
            3000.0 + 50.0 + 10.0
        )

    def test_no_pause_below_threshold(self):
        sim = Simulator()
        ctrl = make(sim, pause_threshold_ns=100.0)
        done = []
        ctrl.submit(write_req(1, 0))
        sim.run(until=2950.0)         # only 50 ns of the write remain
        ctrl.submit(read_req(2, 8, done.append))
        sim.run()
        assert ctrl.stats.write_pauses == 0
        assert done[0].start_ns >= 3000.0  # read waited for the write

    def test_pausing_disabled_by_default(self):
        sim = Simulator()
        cfg = default_config().replace(
            memctrl=MemCtrlConfig(opportunistic_drain=True)
        )
        ctrl = MemoryController(sim, cfg, FlatService(), enable_forwarding=False)
        done = []
        ctrl.submit(write_req(1, 0))
        sim.run(until=500.0)
        ctrl.submit(read_req(2, 8, done.append))
        sim.run()
        assert ctrl.stats.write_pauses == 0
        assert done[0].start_ns == pytest.approx(3000.0)

    def test_multiple_reads_drain_before_resume(self):
        sim = Simulator()
        ctrl = make(sim)
        done = []
        ctrl.submit(write_req(1, 0))
        sim.run(until=200.0)
        for i in range(3):
            ctrl.submit(read_req(10 + i, 8 + 8 * 0, done.append))  # bank 0
        sim.run()
        # One pause, three reads served back-to-back, then the resume.
        assert ctrl.stats.write_pauses == 1
        assert len(done) == 3
        assert ctrl.stats.write_latency.count == 1

    def test_reads_on_other_banks_unaffected(self):
        sim = Simulator()
        ctrl = make(sim)
        done = []
        ctrl.submit(write_req(1, 0))
        sim.run(until=100.0)
        ctrl.submit(read_req(2, 1, done.append))  # different bank
        sim.run()
        assert ctrl.stats.write_pauses == 0
        assert done[0].latency_ns == pytest.approx(50.0)

    def test_config_validation(self):
        with pytest.raises(Exception):
            MemCtrlConfig(pause_overhead_ns=-1.0)


class TestPausingSystemLevel:
    def test_pausing_improves_dcw_read_latency(self):
        """Pausing rescues reads stuck behind the baseline's 3.4 us
        writes; the improvement shrinks for Tetris (short writes)."""
        from repro.experiments.fullsystem import run_fullsystem
        from repro.trace.synthetic import generate_trace

        trace = generate_trace("dedup", requests_per_core=600, seed=3)
        base_cfg = default_config()
        pause_cfg = base_cfg.replace(
            memctrl=MemCtrlConfig(write_pausing=True)
        )
        plain = run_fullsystem(trace, "dcw", base_cfg)
        paused = run_fullsystem(trace, "dcw", pause_cfg)
        assert paused.controller.write_pauses > 0
        assert paused.mean_read_latency_ns < plain.mean_read_latency_ns
