"""Unit + property tests for repro.util.bits."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.bits import (
    flip_k_bits,
    hamming_distance,
    pack_units,
    popcount64,
    random_units,
    reset_mask,
    set_mask,
    unpack_bits,
)

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestPopcount:
    def test_scalar(self):
        assert popcount64(0) == 0
        assert popcount64(0xFF) == 8
        assert popcount64((1 << 64) - 1) == 64

    def test_array(self):
        arr = np.array([0, 1, 3, 7], dtype=np.uint64)
        assert popcount64(arr).tolist() == [0, 1, 2, 3]

    @given(u64)
    def test_matches_python_bitcount(self, x):
        assert popcount64(x) == x.bit_count()


class TestHamming:
    def test_identical_is_zero(self, line8):
        assert hamming_distance(line8, line8) == 0

    def test_single_bit(self):
        a = np.array([0], dtype=np.uint64)
        b = np.array([1], dtype=np.uint64)
        assert hamming_distance(a, b) == 1

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_distance(np.zeros(2, np.uint64), np.zeros(3, np.uint64))

    @given(u64, u64)
    def test_symmetric(self, a, b):
        aa = np.array([a], dtype=np.uint64)
        bb = np.array([b], dtype=np.uint64)
        assert hamming_distance(aa, bb) == hamming_distance(bb, aa)

    @given(u64, u64)
    def test_equals_xor_popcount(self, a, b):
        aa = np.array([a], dtype=np.uint64)
        bb = np.array([b], dtype=np.uint64)
        assert hamming_distance(aa, bb) == (a ^ b).bit_count()


class TestMasks:
    @given(u64, u64)
    def test_masks_partition_the_difference(self, old, new):
        o = np.array([old], dtype=np.uint64)
        n = np.array([new], dtype=np.uint64)
        s = int(set_mask(o, n)[0])
        r = int(reset_mask(o, n)[0])
        assert s & r == 0                       # disjoint
        assert s | r == old ^ new               # cover exactly the diff
        assert s & old == 0                     # SETs start from 0-cells
        assert r & ~old == 0                    # RESETs start from 1-cells

    def test_known_example(self):
        old = np.array([0b1100], dtype=np.uint64)
        new = np.array([0b1010], dtype=np.uint64)
        assert int(set_mask(old, new)[0]) == 0b0010
        assert int(reset_mask(old, new)[0]) == 0b0100


class TestPackUnpack:
    @given(st.lists(u64, min_size=1, max_size=8))
    def test_roundtrip(self, values):
        units = np.array(values, dtype=np.uint64)
        assert np.array_equal(pack_units(unpack_bits(units)), units)

    def test_bit_order_lsb_first(self):
        bits = unpack_bits(np.array([0b101], dtype=np.uint64))
        assert bits[0, 0] == 1 and bits[0, 1] == 0 and bits[0, 2] == 1

    def test_pack_rejects_wide(self):
        with pytest.raises(ValueError):
            pack_units(np.zeros((1, 65), dtype=np.uint64))

    def test_unpack_narrow_width(self):
        bits = unpack_bits(np.array([0xFFFF], dtype=np.uint64), width=16)
        assert bits.shape == (1, 16)
        assert bits.sum() == 16


class TestRandomUnits:
    def test_deterministic_for_seed(self):
        a = random_units(np.random.default_rng(1), 10)
        b = random_units(np.random.default_rng(1), 10)
        assert np.array_equal(a, b)

    def test_roughly_half_ones(self):
        units = random_units(np.random.default_rng(0), 1000)
        mean = popcount64(units).mean()
        assert 30 < mean < 34


class TestFlipKBits:
    @given(
        u64,
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
    )
    def test_exact_counts_when_possible(self, word, k10, k01):
        ones = word.bit_count()
        zeros = 64 - ones
        rng = np.random.default_rng(0)
        if k10 > ones or k01 > zeros:
            with pytest.raises(ValueError):
                flip_k_bits(rng, word, k10, k01)
            return
        out = flip_k_bits(rng, word, k10, k01)
        assert (word & ~out).bit_count() == k10   # 1 -> 0 flips
        assert (~word & out & ((1 << 64) - 1)).bit_count() == k01

    def test_zero_flips_is_identity(self):
        assert flip_k_bits(np.random.default_rng(0), 0xDEAD, 0, 0) == 0xDEAD
