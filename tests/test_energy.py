"""Tests for the energy model (current x time per programmed cell)."""

import numpy as np
import pytest

from repro.pcm.energy import EnergyModel


class TestEnergyModel:
    def test_paper_operating_point(self):
        em = EnergyModel()
        assert em.e_set == pytest.approx(430.0)       # 1 x 430 ns
        assert em.e_reset == pytest.approx(106.0)     # 2 x 53 ns

    def test_set_about_4x_reset(self):
        em = EnergyModel()
        assert em.e_set / em.e_reset == pytest.approx(430.0 / 106.0)

    def test_write_energy_scalar(self):
        em = EnergyModel()
        assert float(em.write_energy(2, 3)) == pytest.approx(2 * 430 + 3 * 106)

    def test_write_energy_array(self):
        em = EnergyModel()
        e = em.write_energy(np.array([1, 0]), np.array([0, 1]))
        assert e.tolist() == [430.0, 106.0]

    def test_total_includes_reads(self):
        em = EnergyModel(read_energy_per_line=10.0)
        assert em.total(1, 1, n_reads=3) == pytest.approx(430 + 106 + 30)

    def test_zero_cost_for_silent_write(self):
        em = EnergyModel()
        assert float(em.write_energy(0, 0)) == 0.0

    def test_custom_operating_point(self):
        em = EnergyModel(t_set_ns=100.0, t_reset_ns=50.0, reset_current_ratio=3.0)
        assert em.e_set == 100.0
        assert em.e_reset == 150.0
