"""Tests for multiprogrammed trace mixing."""

import numpy as np
import pytest

from repro.experiments.fullsystem import run_fullsystem
from repro.trace.mixer import generate_mix
from repro.trace.record import OP_WRITE


class TestGenerateMix:
    def test_cores_run_their_workloads(self):
        mix = generate_mix(["blackscholes", "vips"], requests_per_core=300)
        assert set(np.unique(mix.records["core"])) == {0, 1}
        # vips is ~40x more memory-intensive: core 1 executes far fewer
        # instructions for the same request count.
        instr = mix.instructions_per_core()
        assert instr[0] > 10 * instr[1]

    def test_address_spaces_disjoint(self):
        mix = generate_mix(["dedup", "dedup"], requests_per_core=200,
                           address_stride=1 << 20)
        lines0 = mix.records["line"][mix.records["core"] == 0]
        lines1 = mix.records["line"][mix.records["core"] == 1]
        assert set(lines0.tolist()).isdisjoint(lines1.tolist())

    def test_write_counts_aligned(self):
        mix = generate_mix(["ferret", "freqmine"], requests_per_core=200)
        assert mix.write_counts.shape[0] == mix.n_writes

    def test_counts_follow_core_profiles(self):
        """Writes from the vips core must carry vips's heavy profile."""
        mix = generate_mix(["blackscholes", "vips"], requests_per_core=400)
        is_write = mix.records["op"] == OP_WRITE
        cores_of_writes = mix.records["core"][is_write]
        per_write = mix.write_counts.astype(int).sum(axis=(1, 2))
        mean_bs = per_write[cores_of_writes == 0].mean()
        mean_vips = per_write[cores_of_writes == 1].mean()
        assert mean_vips > 4 * mean_bs

    def test_clock_merge_is_time_ordered_per_core(self):
        mix = generate_mix(["dedup", "ferret"], requests_per_core=150)
        for core in (0, 1):
            gaps = mix.records["gap"][mix.records["core"] == core]
            assert len(gaps) == 150

    def test_empty_workload_list_rejected(self):
        with pytest.raises(ValueError):
            generate_mix([])

    def test_deterministic(self):
        a = generate_mix(["dedup", "vips"], requests_per_core=100, seed=9)
        b = generate_mix(["dedup", "vips"], requests_per_core=100, seed=9)
        assert np.array_equal(a.records, b.records)
        assert np.array_equal(a.write_counts, b.write_counts)


class TestMixSimulation:
    def test_mix_runs_end_to_end(self):
        mix = generate_mix(
            ["blackscholes", "canneal", "dedup", "vips"], requests_per_core=150
        )
        res = run_fullsystem(mix, "tetris")
        done = res.controller.read_latency.count + res.controller.write_latency.count
        assert done == len(mix)

    def test_tetris_still_wins_on_mixes(self):
        mix = generate_mix(["canneal", "vips"], requests_per_core=400)
        dcw = run_fullsystem(mix, "dcw")
        tetris = run_fullsystem(mix, "tetris")
        assert tetris.mean_read_latency_ns < dcw.mean_read_latency_ns
        assert tetris.runtime_ns < dcw.runtime_ns
