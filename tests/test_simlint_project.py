"""simlint v2 internals: project model, import graph, incremental cache.

The whole-program layer (phase 1) and the cache are infrastructure the
project-level rules (SL012/SL013) and the <1 s warm ``make lint``
depend on; these tests pin their semantics directly, below the rule
level.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

if str(REPO) not in sys.path:  # the root shim makes `import simlint` work
    sys.path.insert(0, str(REPO))

from simlint import LintCache, build_module_info, compute_salt  # noqa: E402
from simlint.engine import lint_tree  # noqa: E402
from simlint.project import ProjectModel, module_name_for  # noqa: E402


# ----------------------------------------------------------------------
# build_module_info: import classification.
# ----------------------------------------------------------------------
def info_for(source: str, module: str = "app.mod", path: str = "app/mod.py"):
    info = build_module_info(source, path=path, module=module)
    assert info is not None
    return info


def test_import_records_classify_typing_only_and_function_level():
    info = info_for(
        "from typing import TYPE_CHECKING\n"
        "import app.low\n"
        "if TYPE_CHECKING:\n"
        "    from app.high import Thing\n"
        "def f():\n"
        "    import app.late\n"
    )
    by_target = {r.target: r for r in info.imports}
    assert not by_target["app.low"].typing_only
    assert by_target["app.high"].typing_only
    assert by_target["app.late"].function_level
    assert not by_target["app.low"].function_level


def test_relative_imports_resolve_against_the_package():
    info = info_for(
        "from . import sibling\nfrom .nested import thing\nfrom ..other import x\n",
        module="pkg.sub.mod",
        path="pkg/sub/mod.py",
    )
    targets = {r.target for r in info.imports}
    assert targets == {"pkg.sub", "pkg.sub.nested", "pkg.other"}


def test_module_name_for_anchors_on_package_structure(tmp_path):
    (tmp_path / "pkg" / "sub").mkdir(parents=True)
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
    mod = tmp_path / "pkg" / "sub" / "mod.py"
    mod.write_text("X = 1\n")
    assert module_name_for(mod) == "pkg.sub.mod"
    # A namespace-style file with no __init__.py above it is bare.
    loose = tmp_path / "loose.py"
    loose.write_text("X = 1\n")
    assert module_name_for(loose) == "loose"


# ----------------------------------------------------------------------
# ProjectModel: edges, cycles, re-export resolution.
# ----------------------------------------------------------------------
def model_of(sources: dict[str, str]) -> ProjectModel:
    project = ProjectModel()
    for module, src in sources.items():
        is_pkg = module.endswith(".__init__")
        name = module[: -len(".__init__")] if is_pkg else module
        path = module.replace(".", "/") + ".py"
        if is_pkg:
            path = name.replace(".", "/") + "/__init__.py"
        info = build_module_info(src, path=path, module=name)
        assert info is not None, module
        project.add(info)
    return project


def test_from_import_resolves_to_the_submodule_not_the_package():
    project = model_of(
        {
            "pkg.__init__": "from pkg.a import thing\n",
            "pkg.a": "def thing():\n    return 1\n",
            "pkg.b": "from pkg import a\n",
        }
    )
    (record,) = project.modules["pkg.b"].imports
    assert project.resolve_targets(record) == ["pkg.a"]
    # No false package<->submodule cycle through the re-exporting init.
    assert project.find_cycles() == []


def test_find_cycles_reports_the_scc_and_ignores_function_level():
    project = model_of(
        {
            "app.a": "import app.b\n",
            "app.b": "import app.a\n",
            "app.c": "def f():\n    import app.a\n",
            "app.__init__": "",
        }
    )
    assert project.find_cycles() == [["app.a", "app.b"]]


def test_resolve_export_follows_init_chains():
    project = model_of(
        {
            "pkg.__init__": "from pkg.impl import worker\n",
            "pkg.impl": "def worker():\n    return 1\n",
            "use": "from pkg import worker\n",
        }
    )
    resolved = project.resolve_export("pkg", "worker")
    assert resolved is not None
    mod, sym = resolved
    assert mod == "pkg.impl" and sym.kind == "function"


def test_public_api_honors_all_and_module_filter():
    project = model_of(
        {
            "app.mod": (
                "from app.other import helper, LIMIT\n"
                "__all__ = ['main', 'LIMIT', 'helper']\n"
                "def main():\n    return helper()\n"
                "def _private():\n    return 0\n"
            ),
            "app.other": "LIMIT = 3\ndef helper():\n    return 1\n",
            "app.__init__": "",
        }
    )
    names = [n for n, _ in project.public_api("app.mod")]
    # `helper` is imported (foreign __module__ -> filtered); the
    # constant LIMIT has no __module__ and is kept, like gen_api_docs.
    assert names == ["main", "LIMIT"]


def test_covers_package_detects_partial_scans(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text("X = 1\n")
    (pkg / "b.py").write_text("Y = 2\n")
    full = lint_tree([pkg]).project
    assert full.covers_package("pkg")
    partial = lint_tree([pkg / "__init__.py", pkg / "a.py"]).project
    assert not partial.covers_package("pkg")


# ----------------------------------------------------------------------
# Incremental cache.
# ----------------------------------------------------------------------
def write_tree(root: Path) -> Path:
    pkg = root / "pkg"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "__init__.py").write_text('"""pkg."""\n')
    (pkg / "a.py").write_text("def f(xs=[]):\n    return xs\n")
    (pkg / "b.py").write_text("def g():\n    return 1\n")
    return pkg


def run_cached(pkg: Path, cache_dir: Path):
    cache = LintCache(cache_dir, compute_salt(None))
    return lint_tree([pkg], cache=cache)


def test_warm_run_is_byte_identical_and_fully_cached(tmp_path):
    pkg = write_tree(tmp_path)
    cold = run_cached(pkg, tmp_path / "cache")
    warm = run_cached(pkg, tmp_path / "cache")
    assert cold.cache_hits == 0
    assert warm.cache_hits == warm.files == 3
    assert [f.to_dict() for f in warm.findings] == [
        f.to_dict() for f in cold.findings
    ]
    assert warm.suppressed == cold.suppressed


def test_touch_rehashes_but_reuses_findings(tmp_path):
    pkg = write_tree(tmp_path)
    run_cached(pkg, tmp_path / "cache")
    a = pkg / "a.py"
    a.touch()  # new mtime, same bytes
    warm = run_cached(pkg, tmp_path / "cache")
    assert warm.cache_hits == 3
    assert len(warm.findings) == 1  # the SL005 in a.py, from cache


def test_stale_hash_invalidates_only_that_file(tmp_path):
    pkg = write_tree(tmp_path)
    run_cached(pkg, tmp_path / "cache")
    (pkg / "b.py").write_text("def g(ys=[]):\n    return ys\n")
    rerun = run_cached(pkg, tmp_path / "cache")
    assert rerun.cache_hits == 2  # a.py and __init__ still cached
    assert sorted(f.path for f in rerun.findings) == [
        str(pkg / "a.py"),
        str(pkg / "b.py"),
    ]


def test_salt_change_discards_the_cache(tmp_path):
    pkg = write_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    cache = LintCache(cache_dir, "salt-one")
    lint_tree([pkg], cache=cache)
    reopened = LintCache(cache_dir, "salt-two")
    run = lint_tree([pkg], cache=reopened)
    assert run.cache_hits == 0


def test_signature_change_invalidates_dependent_findings(tmp_path):
    # SL011 checks call sites against callee signatures, so per-file
    # findings are only reusable while the project interface digest
    # holds; renaming a parameter elsewhere must force a re-lint.
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text('"""repro fixture."""\n')
    (pkg / "lowlevel.py").write_text(
        "def pulse(width_ns):\n    return width_ns\n"
    )
    (pkg / "caller.py").write_text(
        "from repro.lowlevel import pulse\n"
        "def issue(t_cycles):\n"
        "    return pulse(t_cycles)\n"
    )
    cache_dir = tmp_path / "cache"
    first = run_cached(pkg, cache_dir)
    assert [f.rule for f in first.findings] == ["SL011"]
    # The callee stops taking ns: the cached caller.py findings are
    # stale even though caller.py itself did not change.
    (pkg / "lowlevel.py").write_text(
        "def pulse(width_cycles):\n    return width_cycles\n"
    )
    second = run_cached(pkg, cache_dir)
    assert [f.rule for f in second.findings] == []


def test_cache_file_is_json_with_salt(tmp_path):
    pkg = write_tree(tmp_path)
    run_cached(pkg, tmp_path / "cache")
    doc = json.loads((tmp_path / "cache" / "cache.json").read_text())
    assert doc["salt"] == compute_salt(None)
    assert len(doc["files"]) == 3
