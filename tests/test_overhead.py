"""Tests for the §IV.D overhead model."""

import pytest

from repro.core.overhead import AnalysisOverheadModel


class TestOverheadModel:
    def test_measured_worst_case(self):
        m = AnalysisOverheadModel()
        assert m.measured_worst_ns == pytest.approx(102.5)

    def test_power_overhead_fraction(self):
        # §IV.D: 4 / 125 ~ 3.2 %.
        assert AnalysisOverheadModel().power_overhead_fraction == pytest.approx(0.032)

    def test_estimate_calibrated_at_8_units(self):
        m = AnalysisOverheadModel()
        assert m.estimated_cycles(8) == m.measured_worst_cycles

    def test_estimate_scales_with_units(self):
        m = AnalysisOverheadModel()
        # 128 B / 256 B cache lines -> 16 / 32 data units.
        assert m.estimated_cycles(16) > m.estimated_cycles(8)
        assert m.estimated_cycles(32) > m.estimated_cycles(16)

    def test_estimated_ns_uses_clock(self):
        m = AnalysisOverheadModel(clock_mhz=800.0)
        assert m.estimated_ns(8) == pytest.approx(m.estimated_cycles(8) / 0.8)

    def test_rejects_zero_units(self):
        with pytest.raises(ValueError):
            AnalysisOverheadModel().estimated_cycles(0)
