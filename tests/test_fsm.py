"""Tests for the FSM execution stage (paper Fig. 8)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import analyze
from repro.core.fsm import FSMExecutor, execute_schedule
from repro.core.schedule import ScheduledOp, TetrisSchedule

counts8 = st.lists(st.integers(min_value=0, max_value=32), min_size=8, max_size=8)


class TestExecution:
    def test_completion_matches_equation5(self):
        sched = analyze([8, 7, 7, 6, 6, 6, 5, 3], [1, 1, 1, 2, 3, 2, 2, 5],
                        power_budget=32.0)
        trace = execute_schedule(sched, t_set_ns=430.0)
        assert trace.completion_ns == pytest.approx(sched.service_time_ns(430.0))

    def test_bit_totals(self):
        sched = analyze([4, 2], [1, 3], power_budget=128.0)
        trace = execute_schedule(sched)
        assert trace.set_bits == 6
        assert trace.reset_bits == 4

    def test_empty_schedule_completes_instantly(self):
        sched = analyze([0] * 4, [0] * 4)
        trace = execute_schedule(sched)
        assert trace.completion_ns == pytest.approx(0.0)
        assert trace.peak_current() == pytest.approx(0.0)

    def test_write1_active_all_K_subslots(self):
        sched = analyze([10], [0], power_budget=128.0)
        trace = execute_schedule(sched)
        assert all((0, "write1") in slot for slot in trace.active)

    def test_write0_active_one_subslot(self):
        sched = analyze([10, 0], [0, 3], power_budget=128.0)
        trace = execute_schedule(sched)
        active_w0 = [i for i, slot in enumerate(trace.active) if (1, "write0") in slot]
        assert len(active_w0) == 1

    def test_budget_violation_detected(self):
        # Hand-build an invalid schedule; the FSM guard must catch it.
        sched = TetrisSchedule(K=8, power_budget=32.0, result=1)
        sched.write1_queue.append(
            ScheduledOp(unit=0, kind="write1", slot=0, current=50.0, n_bits=50)
        )
        with pytest.raises(RuntimeError):
            FSMExecutor(430.0, 32.0).execute(sched)

    def test_rejects_bad_t_set(self):
        with pytest.raises(ValueError):
            FSMExecutor(0.0, 32.0)


class TestCrossValidation:
    """The executor must agree with the analyzer on every schedule."""

    @settings(max_examples=150)
    @given(counts8, counts8)
    def test_completion_equals_equation5(self, n_set, n_reset):
        sched = analyze(n_set, n_reset)
        trace = execute_schedule(sched, t_set_ns=430.0)
        assert trace.completion_ns == pytest.approx(sched.service_time_ns(430.0))

    @settings(max_examples=150)
    @given(counts8, counts8)
    def test_fsm_current_equals_occupancy(self, n_set, n_reset):
        sched = analyze(n_set, n_reset)
        trace = execute_schedule(sched)
        assert np.allclose(trace.current, sched.occupancy())

    @settings(max_examples=150)
    @given(counts8, counts8)
    def test_fsm_never_exceeds_budget(self, n_set, n_reset):
        sched = analyze(n_set, n_reset)
        trace = execute_schedule(sched)
        assert trace.peak_current() <= 128.0 + 1e-9

    @settings(max_examples=100)
    @given(counts8, counts8)
    def test_bit_totals_match_inputs(self, n_set, n_reset):
        sched = analyze(n_set, n_reset)
        trace = execute_schedule(sched)
        assert trace.set_bits == sum(n_set)
        assert trace.reset_bits == sum(n_reset)
