"""Tests for measurement warmup and device-level wear tracking."""

import numpy as np
import pytest

from repro.analysis.validation import validate_system_result
from repro.config import default_config
from repro.experiments.fullsystem import run_fullsystem
from repro.pcm.device import PCMDevice
from repro.schemes import get_scheme
from repro.trace.synthetic import generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace("dedup", requests_per_core=200, seed=14)


class TestWarmup:
    def test_warmup_excludes_early_requests_from_stats(self, trace):
        full = run_fullsystem(trace, "dcw")
        warm = run_fullsystem(trace, "dcw", warmup_requests=100)
        assert (
            warm.controller.read_latency.count
            + warm.controller.write_latency.count
            == len(trace) - 100
        )
        assert full.controller.completed == warm.controller.completed

    def test_conservation_still_validates(self, trace):
        cfg = default_config()
        res = run_fullsystem(trace, "tetris", cfg, warmup_requests=50)
        validate_system_result(res, trace, cfg)

    def test_warmup_zero_is_default_behavior(self, trace):
        res = run_fullsystem(trace, "dcw")
        assert res.controller.completed == (
            res.controller.read_latency.count
            + res.controller.write_latency.count
        )

    def test_warmup_changes_means_not_conservation(self, trace):
        """Cold-start requests see empty queues: excluding them moves
        the mean without touching completion counts."""
        full = run_fullsystem(trace, "dcw")
        warm = run_fullsystem(trace, "dcw", warmup_requests=200)
        assert warm.controller.completed == full.controller.completed
        assert warm.controller.read_latency.count < full.controller.read_latency.count


class TestDeviceWear:
    def test_wear_tracked_per_line(self, rng):
        dev = PCMDevice(lambda cfg: get_scheme("dcw", cfg), track_wear=True)
        initial = dev.bank_for(3).image.read_logical(3).copy()
        flipped = initial.copy()
        flipped[0] ^= np.uint64(0xFF)            # 8 changed cells
        dev.write(3, flipped)
        dev.write(3, initial)                    # 8 back
        bank = dev.bank_for(3)
        assert bank.wear is not None
        assert bank.wear.programs_of(3) == 16

    def test_wear_stats_merge_across_banks(self, line8):
        dev = PCMDevice(lambda cfg: get_scheme("dcw", cfg), track_wear=True)
        for line in range(16):  # touches both banks 0..7
            dev.write(line, line8 ^ np.uint64(0b1))
        stats = dev.wear_stats()
        assert stats.lines_touched == 16
        assert stats.total_programs >= 16

    def test_wear_disabled_by_default(self, line8):
        dev = PCMDevice(lambda cfg: get_scheme("dcw", cfg))
        dev.write(0, line8)
        with pytest.raises(RuntimeError):
            dev.wear_stats()

    def test_comparison_scheme_wears_less(self, rng):
        heavy = PCMDevice(lambda cfg: get_scheme("conventional", cfg), track_wear=True)
        light = PCMDevice(lambda cfg: get_scheme("tetris", cfg), track_wear=True)
        for i in range(10):
            old_h = heavy.bank_for(i).image.read_logical(i)
            old_l = light.bank_for(i).image.read_logical(i)
            heavy.write(i, old_h ^ np.uint64(0b11))
            light.write(i, old_l ^ np.uint64(0b11))
        assert (
            light.wear_stats().total_programs
            < heavy.wear_stats().total_programs / 10
        )
