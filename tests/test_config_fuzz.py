"""Configuration fuzzing: the system must hold its invariants under any
internally-consistent operating point, not just Table II."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.validation import validate_system_result
from repro.config import (
    CPUConfig,
    MemCtrlConfig,
    PCMOrganization,
    PCMPower,
    PCMTimings,
    SystemConfig,
)
from repro.core.batch import pack_batch
from repro.experiments.fullsystem import run_fullsystem
from repro.trace.synthetic import generate_trace

configs = st.builds(
    SystemConfig,
    timings=st.builds(
        PCMTimings,
        t_read_ns=st.floats(min_value=10.0, max_value=100.0),
        t_reset_ns=st.floats(min_value=20.0, max_value=100.0),
        t_set_ns=st.floats(min_value=100.0, max_value=1000.0),
    ),
    power=st.builds(
        PCMPower,
        reset_set_current_ratio=st.floats(min_value=1.0, max_value=4.0),
        power_budget_per_chip=st.sampled_from([16.0, 32.0, 64.0]),
    ),
    organization=st.builds(
        PCMOrganization,
        num_banks=st.sampled_from([2, 4, 8, 16]),
        subarrays_per_bank=st.sampled_from([1, 2, 4]),
    ),
    cpu=st.builds(
        CPUConfig,
        num_cores=st.sampled_from([1, 2, 4]),
        max_outstanding_reads=st.sampled_from([1, 2, 4]),
    ),
    memctrl=st.builds(
        MemCtrlConfig,
        opportunistic_drain=st.booleans(),
        write_pausing=st.booleans(),
        write_coalescing=st.booleans(),
        drain_order=st.sampled_from(["fifo", "sjf"]),
    ),
)


@settings(max_examples=25, deadline=None)
@given(configs)
def test_fullsystem_invariants_hold_for_any_config(cfg):
    """Conservation + bounds must survive every feature combination."""
    # t_set >= t_reset is enforced by PCMTimings; hypothesis may draw
    # violating pairs, which raise at construction — filtered here.
    trace = generate_trace(
        "dedup", requests_per_core=60, num_cores=cfg.cpu.num_cores, seed=3
    )
    res = run_fullsystem(trace, "tetris", cfg)
    validate_system_result(res, trace, cfg)


@settings(max_examples=25, deadline=None)
@given(configs)
def test_scheme_ranking_under_asymmetry(cfg):
    """Tetris beats DCW wherever its premise holds — the paper's
    asymmetry regime: K >= 4 so write-0s hide inside write units, L <= 2
    so bursts fit the interspaces, budget >= one worst-case unit, and a
    SET slow enough that the fixed 102.5 ns analysis overhead is small.
    The fuzzer legitimately found the complements (K = 1, L = 4,
    t_set = 100 ns), where Tetris's constant costs and forced burst
    splits erase its advantage — the scheme genuinely needs the PCM
    asymmetries it is named after, which is worth pinning as a test."""
    if (
        cfg.K < 4
        or cfg.L > 2.0
        or cfg.bank_power_budget < 128.0
        or cfg.timings.t_set_ns < 4 * cfg.analysis_overhead_ns
    ):
        return  # outside the scheme's premise; see docstring
    # Hold the controller at the paper's policy: pausing + forwarding at
    # toy trace sizes can reward the SLOWER scheme (writes parked longer
    # in the queue catch more 1 ns forwarded reads) — a second-order
    # artifact the dedicated extension benches examine at real sizes.
    cfg = cfg.replace(memctrl=MemCtrlConfig())
    trace = generate_trace(
        "vips", requests_per_core=80, num_cores=cfg.cpu.num_cores, seed=3
    )
    dcw = run_fullsystem(trace, "dcw", cfg)
    tetris = run_fullsystem(trace, "tetris", cfg)
    assert tetris.runtime_ns <= dcw.runtime_ns * 1.01


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=16),
    st.floats(min_value=1.0, max_value=4.0),
    st.sampled_from([16.0, 32.0, 64.0, 128.0, 256.0]),
)
def test_batch_packer_invariants_across_operating_points(K, L, budget):
    rng = np.random.default_rng(0)
    n_set = rng.poisson(6.7, size=(50, 8))
    n_reset = rng.poisson(2.9, size=(50, 8))
    packed = pack_batch(
        n_set, n_reset, K=K, L=L, power_budget=budget, allow_split=True
    )
    units = packed.service_units()
    assert (units >= 0).all()
    assert (packed.result >= (n_set.sum(axis=1) > 0)).all()
