"""Fault subsystem: injection, verify-and-retry, ECP, retirement.

The acceptance bar this file enforces:

* with the fault model *disabled* every scheme's ``write`` is
  bit-identical to its pristine ``_write_once`` pass (outcome and state);
* a fixed seed reproduces the exact same failures run-to-run;
* a write scripted to succeed on its k-th attempt is priced *exactly*
  (attempts, residual units, verify reads, energy) per the extended
  Equation-5 decomposition, which the invariant verifier re-checks;
* every degradation rung — stuck cells, ECP absorption, retirement to a
  spare — ends with a read-back equal to the committed image, and the
  final rung raises a structured :class:`UncorrectableWriteError` with
  the stored image restored: never silent corruption.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config import FaultConfig, default_config
from repro.core.analysis import TetrisScheduler
from repro.faults import (
    ECPTable,
    FaultModel,
    SparePool,
    UncorrectableWriteError,
)
from repro.faults.ecp import SPARE_BASE
from repro.pcm.bank import PCMBank
from repro.pcm.chip import PCMChip
from repro.pcm.state import LineState, cell_diff, initial_line_content
from repro.pcm.write_driver import WriteDriver
from repro.schemes import ALL_SCHEMES, EXTENSION_SCHEMES, get_scheme
from repro.schemes.base import WriteOutcome
from repro.sim.stats import FaultStats
from repro.verify import InvariantViolation, verify_outcome

_U64 = np.uint64
SEED = 20160816


def faulty_config(**kwargs):
    """Default config with the fault model enabled and overrides applied."""
    fields = dict(enabled=True, seed=SEED)
    fields.update(kwargs)
    return default_config().replace(faults=FaultConfig(**fields))


def fresh_line(line: int = 0, units: int = 8) -> np.ndarray:
    return initial_line_content(SEED, line, units)


def payload_for(state: LineState, flip_bits: int, rng) -> np.ndarray:
    """A new logical image differing from the current one in some cells."""
    mask = np.zeros(state.physical.size, dtype=_U64)
    for u in range(mask.size):
        bits = rng.choice(64, size=flip_bits, replace=False)
        mask[u] = np.bitwise_or.reduce(_U64(1) << bits.astype(_U64))
    return state.logical ^ mask


# ----------------------------------------------------------------------
# ECP table and spare pool mechanics.
# ----------------------------------------------------------------------
def test_ecp_assigns_within_capacity_and_covers():
    ecp = ECPTable(entries_per_line=3)
    mask = np.array([0b101, 0], dtype=_U64)
    assert ecp.try_assign(7, mask)
    assert ecp.entries_used(7) == 2
    np.testing.assert_array_equal(ecp.covered_mask(7, 2), mask)
    # Re-assigning already-covered cells consumes nothing new.
    assert ecp.try_assign(7, mask)
    assert ecp.entries_used(7) == 2
    assert ecp.try_assign(7, np.array([0b010, 0], dtype=_U64))
    assert ecp.entries_used(7) == 3


def test_ecp_refuses_over_capacity_without_partial_assignment():
    ecp = ECPTable(entries_per_line=2)
    assert not ecp.try_assign(1, np.array([0b111], dtype=_U64))
    assert ecp.entries_used(1) == 0
    assert ecp.lines_with_entries() == []


def test_spare_pool_retires_and_resolves_chains():
    pool = SparePool(capacity=2)
    first = pool.retire(5)
    assert first == SPARE_BASE
    assert pool.resolve(5) == first
    second = pool.retire(first)  # the spare itself can die
    assert pool.resolve(5) == second
    assert pool.spares_left == 0
    assert not pool.can_retire()
    with pytest.raises(RuntimeError):
        pool.retire(6)
    assert pool.retired_lines == sorted([5, first])


# ----------------------------------------------------------------------
# Driver- and chip-level program-and-verify.
# ----------------------------------------------------------------------
def test_driver_program_verified_retries_failed_bits():
    driver = WriteDriver()

    def fail_bit4_once(attempt, attempted):
        return np.array([0x10 if attempt == 0 else 0], dtype=_U64)

    res = driver.program_verified(
        np.array([0x0F], dtype=_U64),
        np.array([0xF0], dtype=_U64),
        injector=fail_bit4_once,
    )
    assert res.attempts == 2
    assert res.verified
    assert int(res.result[0]) == 0xF0
    assert int(res.set_mask[0]) == 0xF0 and int(res.reset_mask[0]) == 0x0F


def test_driver_program_verified_reports_residual_when_bounded():
    driver = WriteDriver()

    def always_fail_bit4(attempt, attempted):
        return np.array([0x10], dtype=_U64)

    res = driver.program_verified(
        np.array([0x0F], dtype=_U64),
        np.array([0xF0], dtype=_U64),
        injector=always_fail_bit4,
        max_attempts=3,
    )
    assert res.attempts == 3
    assert not res.verified
    assert int(res.residual[0]) == 0x10
    assert int(res.result[0]) == 0xE0  # everything but the dead bit landed


def test_chip_burst_counts_retries_and_commits():
    chip = PCMChip(
        chip_id=0,
        slice_bits=16,
        fault_injector=lambda a, m: np.asarray(
            [0x1 if a == 0 else 0], dtype=_U64
        ),
    )
    chip.load(0, np.array([0x0000], dtype=_U64))
    chip.execute_burst(0, 0, 0x00FF, "both")
    assert chip.read(0, 0) == 0x00FF
    assert chip.retried_bursts == 1
    assert chip.retry_programs == 1
    assert chip.unverified_bursts == 0


def test_cell_diff_counts_transitions():
    before = np.array([0b1100, 0b0011], dtype=_U64)
    after = np.array([0b1010, 0b0111], dtype=_U64)
    assert cell_diff(before, after) == (2, 1)


# ----------------------------------------------------------------------
# Disabled fault model: the write path is bit-identical to the pristine
# pass for every registered scheme.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_SCHEMES + EXTENSION_SCHEMES)
def test_disabled_faults_bit_identical_outcomes(name):
    cfg = default_config()
    assert not cfg.faults.enabled
    via_write = get_scheme(name, cfg)
    pristine = get_scheme(name, cfg)
    state_a = LineState.from_logical(fresh_line())
    state_b = state_a.copy()
    rng = np.random.default_rng(SEED)
    for i in range(6):
        new = payload_for(state_a, flip_bits=5, rng=rng)
        out_a = via_write.write(state_a, new.copy(), line=i % 2)
        out_b = pristine._write_once(state_b, new.copy())
        assert out_a == out_b  # frozen dataclass: field-exact equality
        assert out_a.attempts == 1 and out_a.retried_bits == 0
        np.testing.assert_array_equal(state_a.physical, state_b.physical)
        np.testing.assert_array_equal(state_a.flip, state_b.flip)


def test_zero_rate_enabled_path_adds_only_the_verify_read():
    cfg = faulty_config()
    scheme = get_scheme("dcw", cfg)
    baseline = get_scheme("dcw", default_config())
    state = LineState.from_logical(fresh_line())
    twin = state.copy()
    rng = np.random.default_rng(SEED)
    new = payload_for(state, flip_bits=4, rng=rng)
    out = scheme.write(state, new.copy(), line=3)
    base = baseline.write(twin, new.copy(), line=3)
    assert out.attempts == 1
    assert out.retried_bits == 0
    assert out.verify_ns == pytest.approx(scheme.t_read)
    assert out.service_ns == pytest.approx(base.service_ns + scheme.t_read)
    assert out.units == pytest.approx(base.units)
    np.testing.assert_array_equal(state.physical, twin.physical)
    np.testing.assert_array_equal(
        scheme.faults.readback(3, state.physical), state.physical
    )


# ----------------------------------------------------------------------
# Scripted k-th-attempt success: exact latency/energy accounting.
# ----------------------------------------------------------------------
class ScriptedFaultModel(FaultModel):
    """Fails every attempted bit on the first ``k - 1`` pulses per line."""

    def __init__(self, config, *, fail_passes: int, wear=None):
        super().__init__(config, wear=wear)
        self.fail_passes = fail_passes

    def _transient_fail_mask(self, rate, pline, units):
        idx = self._draws.get(pline, 0)
        self._draws[pline] = idx + 1
        if idx < self.fail_passes:
            return np.full(units, self._lane, dtype=_U64)
        return np.zeros(units, dtype=_U64)


@pytest.mark.parametrize("k", [2, 3])
def test_kth_attempt_success_is_priced_exactly(k):
    cfg = faulty_config(transient_bit_error_rate=0.5, max_write_attempts=k)
    scheme = get_scheme("dcw", cfg)
    scheme.faults = ScriptedFaultModel(cfg, fail_passes=k - 1, wear=scheme.wear)
    baseline = get_scheme("dcw", default_config())

    state = LineState.from_logical(fresh_line())
    twin = state.copy()
    rng = np.random.default_rng(SEED)
    new = payload_for(state, flip_bits=3, rng=rng)
    before = state.physical.copy()
    base = baseline.write(twin, new.copy())
    out = scheme.write(state, new.copy(), line=0)

    # Each of the k - 1 retry passes re-programs the full difference.
    diff = before ^ state.physical
    set_m = diff & state.physical
    reset_m = diff & before
    d_set = int(np.bitwise_count(set_m).sum())
    d_reset = int(np.bitwise_count(reset_m).sum())
    assert d_set + d_reset > 0
    sched = TetrisScheduler(
        cfg.K, cfg.L, cfg.bank_power_budget, allow_split=True
    ).schedule(
        np.bitwise_count(set_m).astype(np.int64),
        np.bitwise_count(reset_m).astype(np.int64),
    )
    per_pass_units = sched.service_units()

    assert out.attempts == k
    assert out.retried_bits == (k - 1) * (d_set + d_reset)
    assert out.retry_units == pytest.approx((k - 1) * per_pass_units)
    assert out.verify_ns == pytest.approx(k * scheme.t_read)
    assert out.service_ns == pytest.approx(
        base.service_ns + out.retry_units * scheme.t_set + k * scheme.t_read
    )
    extra_energy = float(
        scheme.energy_model.write_energy((k - 1) * d_set, (k - 1) * d_reset)
    ) + k * scheme.energy_model.read_energy_per_line
    assert out.energy == pytest.approx(base.energy + extra_energy)
    # The committed image survives a read-back audit.
    np.testing.assert_array_equal(
        scheme.faults.readback(0, state.physical), state.physical
    )


def test_same_seed_reproduces_identical_retry_sequences():
    reports = []
    for _ in range(2):
        cfg = faulty_config(transient_bit_error_rate=0.05)
        scheme = get_scheme("tetris", cfg)
        state = LineState.from_logical(fresh_line())
        rng = np.random.default_rng(SEED)
        run = []
        for i in range(12):
            new = payload_for(state, flip_bits=6, rng=rng)
            out = scheme.write(state, new.copy(), line=i % 3)
            run.append((out.attempts, out.retried_bits, out.service_ns))
        reports.append(run)
    assert reports[0] == reports[1]
    assert any(attempts > 1 for attempts, _, _ in reports[0])


# ----------------------------------------------------------------------
# Degradation ladder: stuck cells -> ECP -> retirement -> uncorrectable.
# ----------------------------------------------------------------------
HAMMER_MASK = _U64((1 << 0) | (1 << 32))  # 2 cells/unit -> 16 cells/line


def hammer(scheme, state, line, n):
    """Toggle the same 16 cells n times; returns the last outcome.

    Concentrating the traffic on a fixed cell set drives those cells
    across a small endurance budget in a few dozen writes while the rest
    of the line stays healthy — the ECP-sized fault pattern.
    """
    out = None
    for _ in range(n):
        new = state.logical ^ HAMMER_MASK
        out = scheme.write(state, new.copy(), line=line)
    return out


def test_endurance_exhaustion_degrades_through_ecp():
    cfg = faulty_config(
        endurance_mean=40.0, endurance_sigma=0.1, ecp_entries=48, spare_lines=0
    )
    scheme = get_scheme("dcw", cfg)
    state = LineState.from_logical(fresh_line())
    out = hammer(scheme, state, line=0, n=60)
    model = scheme.faults
    assert model.stuck_cells(0, state.physical.size) > 0
    assert model.degraded_writes > 0
    assert out is not None and model.ecp.entries_used(0) > 0
    np.testing.assert_array_equal(
        model.readback(0, state.physical), state.physical
    )


def test_over_ecp_line_retires_to_spare_and_stays_readable():
    cfg = faulty_config(
        endurance_mean=30.0, endurance_sigma=0.1, ecp_entries=2, spare_lines=4
    )
    scheme = get_scheme("dcw", cfg)
    state = LineState.from_logical(fresh_line())
    hammer(scheme, state, line=0, n=80)
    model = scheme.faults
    assert model.retirements > 0
    assert model.physical_of(0) >= SPARE_BASE
    np.testing.assert_array_equal(
        model.readback(0, state.physical), state.physical
    )


def test_uncorrectable_raises_structured_error_and_restores_state():
    cfg = faulty_config(
        endurance_mean=20.0, endurance_sigma=0.1, ecp_entries=0, spare_lines=0
    )
    scheme = get_scheme("dcw", cfg)
    state = LineState.from_logical(fresh_line())
    rng = np.random.default_rng(SEED)
    with pytest.raises(UncorrectableWriteError) as excinfo:
        for i in range(200):
            new = payload_for(state, flip_bits=8, rng=rng)
            snapshot = state.physical.copy()
            scheme.write(state, new.copy(), line=0)
    err = excinfo.value
    assert err.line == 0
    assert err.stuck_bits > 0
    # The failed write rolled the stored image back — no torn line.
    np.testing.assert_array_equal(state.physical, snapshot)


def test_bank_counts_uncorrectable_writes():
    cfg = faulty_config(
        endurance_mean=20.0, endurance_sigma=0.1, ecp_entries=0, spare_lines=0
    )
    bank = PCMBank(0, get_scheme("dcw", cfg), cfg)
    rng = np.random.default_rng(SEED)
    with pytest.raises(UncorrectableWriteError):
        for i in range(200):
            old = bank.image.read_logical(5)
            mask = _U64(np.bitwise_or.reduce(_U64(1) << rng.choice(64, 8).astype(_U64)))
            bank.write(5, old ^ mask)
    assert bank.stats.uncorrectable == 1


# ----------------------------------------------------------------------
# Invariant verifier: forged retry accounting is rejected.
# ----------------------------------------------------------------------
def forged(**kwargs):
    base = dict(
        service_ns=50.0 + 52.5 + 430.0,
        units=1.0,
        read_ns=50.0,
        analysis_ns=52.5,
        n_set=1,
        n_reset=0,
        energy=1.0,
    )
    base.update(kwargs)
    return WriteOutcome(**base)


def test_invariants_accept_consistent_multi_attempt_outcome():
    verify_outcome(
        forged(
            service_ns=50.0 + 52.5 + (1.0 + 0.5) * 430.0 + 100.0,
            attempts=2,
            retried_bits=3,
            retry_units=0.5,
            verify_ns=100.0,
        ),
        t_set_ns=430.0,
    )


@pytest.mark.parametrize(
    "fields",
    [
        dict(attempts=0),
        dict(attempts=1, retried_bits=4),
        dict(attempts=1, retry_units=2.0),
        dict(attempts=2, retried_bits=-1),
        dict(attempts=2, verify_ns=-5.0),
    ],
)
def test_invariants_reject_forged_retry_accounting(fields):
    with pytest.raises(InvariantViolation):
        verify_outcome(forged(**fields), t_set_ns=430.0)


def test_invariants_reject_unpriced_retry_latency():
    # Claims 2 attempts and retried bits but hides the extra service time.
    with pytest.raises(InvariantViolation) as exc:
        verify_outcome(
            forged(attempts=2, retried_bits=3, retry_units=0.5, verify_ns=100.0),
            t_set_ns=430.0,
        )
    assert exc.value.kind == "service_decomposition"


# ----------------------------------------------------------------------
# Aggregation and the sweep experiment.
# ----------------------------------------------------------------------
def test_fault_stats_observe_folds_outcomes():
    stats = FaultStats()
    stats.observe(forged())
    stats.observe(
        forged(
            service_ns=50.0 + 52.5 + 1.5 * 430.0 + 100.0,
            attempts=2,
            retried_bits=3,
            retry_units=0.5,
            verify_ns=100.0,
            degraded=True,
        )
    )
    assert stats.writes == 2
    assert stats.retried_writes == 1
    assert stats.mean_attempts == pytest.approx(1.5)
    assert stats.retry_rate == pytest.approx(0.5)
    assert stats.degraded_writes == 1
    assert stats.summary()["retried_bits"] == 3


def test_fault_sweep_is_deterministic_and_monotone():
    from repro.experiments.faults import run_fault_sweep

    kwargs = dict(workload="dedup", requests_per_core=120, seed=SEED)
    rows_a = run_fault_sweep((0.0, 1e-2), ("dcw",), **kwargs)
    rows_b = run_fault_sweep((0.0, 1e-2), ("dcw",), **kwargs)
    assert rows_a == rows_b
    clean, noisy = rows_a
    assert clean.mean_attempts == pytest.approx(1.0)
    assert clean.retry_rate == pytest.approx(0.0)
    assert noisy.mean_attempts > 1.0
    assert noisy.mean_service_ns > clean.mean_service_ns


def test_retirement_curve_walks_the_cascade():
    from repro.experiments.faults import retirement_curve

    points = retirement_curve(seed=SEED)
    assert points, "curve must produce at least one snapshot"
    last = points[-1]
    assert last.stuck_cells > 0
    assert last.retired_lines > 0 or last.uncorrectable > 0
    # Degradation only accumulates.
    for a, b in zip(points, points[1:]):
        assert b.stuck_cells >= a.stuck_cells
        assert b.retired_lines >= a.retired_lines


# ----------------------------------------------------------------------
# Wear satellite: tracking rides the default path; the switch works.
# ----------------------------------------------------------------------
def test_wear_tracking_is_on_by_default_and_switchable():
    cfg = default_config()
    assert cfg.track_wear
    scheme = get_scheme("dcw", cfg)
    assert scheme.wear is not None
    state = LineState.from_logical(fresh_line())
    rng = np.random.default_rng(SEED)
    new = payload_for(state, flip_bits=4, rng=rng)
    out = scheme.write(state, new.copy(), line=9)
    assert scheme.wear.programs_of(9) == out.n_set + out.n_reset

    bare = get_scheme("dcw", cfg.replace(track_wear=False))
    assert bare.wear is None
    bare.write(LineState.from_logical(fresh_line()), new.copy(), line=9)


def test_fault_mode_forces_cell_level_wear_sharing():
    scheme = get_scheme("dcw", faulty_config())
    assert scheme.wear is not None and scheme.wear.cell_tracking
    assert scheme.faults.wear is scheme.wear


# ----------------------------------------------------------------------
# CI smoke: replay a workload at an environment-selected fault rate and
# audit every committed line (the workflow job sets REPRO_FAULT_RATE).
# ----------------------------------------------------------------------
def test_fault_injection_smoke_readback_clean():
    rate = float(os.environ.get("REPRO_FAULT_RATE", "1e-3"))
    from repro.experiments.faults import replay_writes
    from repro.trace.synthetic import generate_trace

    cfg = faulty_config(transient_bit_error_rate=rate)
    trace = generate_trace("dedup", 120, seed=SEED)
    stats, _, _, bank = replay_writes("tetris", trace, cfg)
    assert stats.writes > 0
    model = bank.scheme.faults
    for line in bank.image.touched_lines():
        stored = bank.image.line(line).physical
        np.testing.assert_array_equal(model.readback(line, stored), stored)
