"""Scale smoke tests: the pipeline must handle large traces gracefully.

These are correctness-at-scale tests (conservation, determinism, memory
discipline), with a very generous wall-clock guard so slow machines
don't flake — they catch accidental O(n^2) regressions, not µs-level
noise (pytest-benchmark covers that).
"""

import time

import pytest

from repro.analysis.validation import validate_system_result
from repro.config import default_config
from repro.experiments.fullsystem import precompute_write_service, run_fullsystem
from repro.trace.synthetic import generate_trace


@pytest.fixture(scope="module")
def big_trace():
    # 4 cores x 25k requests = 100k memory operations.
    return generate_trace("vips", requests_per_core=25_000, seed=99)


class TestScale:
    def test_pricing_100k_requests(self, big_trace):
        t0 = time.perf_counter()
        table = precompute_write_service(big_trace, "tetris")
        elapsed = time.perf_counter() - t0
        assert table.service_ns.size == big_trace.n_writes
        assert elapsed < 30.0, f"pricing took {elapsed:.1f}s"

    def test_fullsystem_100k_requests(self, big_trace):
        cfg = default_config()
        t0 = time.perf_counter()
        res = run_fullsystem(big_trace, "tetris", cfg)
        elapsed = time.perf_counter() - t0
        validate_system_result(res, big_trace, cfg)
        assert elapsed < 120.0, f"simulation took {elapsed:.1f}s"
        # Sanity on the metrics at scale.
        assert res.ipc > 0
        assert res.controller.read_latency.count == big_trace.n_reads

    def test_determinism_at_scale(self, big_trace):
        a = run_fullsystem(big_trace, "three_stage")
        b = run_fullsystem(big_trace, "three_stage")
        # Exact equality is intentional: determinism means bitwise-equal.
        assert a.runtime_ns == b.runtime_ns  # simlint: disable=SL004
        assert a.events == b.events
