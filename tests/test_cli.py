"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig3", "--workloads", "quake"])


class TestCommands:
    def test_fig3(self, capsys):
        assert main(["fig3", "--workloads", "blackscholes", "--requests", "200"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out
        assert "SET" in out

    def test_fig10(self, capsys):
        assert main(["fig10", "--workloads", "swaptions", "--requests", "200"]) == 0
        out = capsys.readouterr().out
        assert "Tetris" in out

    def test_fullsystem(self, capsys):
        code = main([
            "fullsystem", "--workloads", "swaptions",
            "--schemes", "tetris", "--requests", "200",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tetris" in out and "dcw" in out  # baseline auto-included

    def test_diagram_fig4(self, capsys):
        assert main(["diagram", "--fig4"]) == 0
        out = capsys.readouterr().out
        assert "tetris" in out
        assert "result=" in out

    def test_diagram_random(self, capsys):
        assert main(["diagram", "--seed", "3"]) == 0
        assert "Tset" in capsys.readouterr().out

    def test_trace_save(self, capsys, tmp_path):
        out_file = tmp_path / "t.npz"
        assert main([
            "trace", "--workload", "ferret", "--requests", "100",
            "--out", str(out_file),
        ]) == 0
        assert out_file.exists()
        assert "RPKI" in capsys.readouterr().out

    def test_trace_text_save(self, tmp_path):
        out_file = tmp_path / "t.txt"
        assert main([
            "trace", "--workload", "ferret", "--requests", "50",
            "--out", str(out_file),
        ]) == 0
        assert out_file.read_text().startswith("# workload=ferret")

    @pytest.mark.parametrize("sweep", ["budget", "K", "L", "width", "flip"])
    def test_ablation_sweeps(self, sweep, capsys):
        assert main([
            "ablation", "--sweep", sweep, "--requests", "150",
            "--workload", "dedup",
        ]) == 0
        assert "mean units" in capsys.readouterr().out
