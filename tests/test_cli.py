"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig3", "--workloads", "quake"])


class TestCommands:
    def test_fig3(self, capsys):
        assert main(["fig3", "--workloads", "blackscholes", "--requests", "200"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out
        assert "SET" in out

    def test_fig10(self, capsys):
        assert main(["fig10", "--workloads", "swaptions", "--requests", "200"]) == 0
        out = capsys.readouterr().out
        assert "Tetris" in out

    def test_fullsystem(self, capsys):
        code = main([
            "fullsystem", "--workloads", "swaptions",
            "--schemes", "tetris", "--requests", "200",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tetris" in out and "dcw" in out  # baseline auto-included

    def test_diagram_fig4(self, capsys):
        assert main(["diagram", "--fig4"]) == 0
        out = capsys.readouterr().out
        assert "tetris" in out
        assert "result=" in out

    def test_diagram_random(self, capsys):
        assert main(["diagram", "--seed", "3"]) == 0
        assert "Tset" in capsys.readouterr().out

    def test_trace_save(self, capsys, tmp_path):
        out_file = tmp_path / "t.npz"
        assert main([
            "trace", "--workload", "ferret", "--requests", "100",
            "--out", str(out_file),
        ]) == 0
        assert out_file.exists()
        assert "RPKI" in capsys.readouterr().out

    def test_trace_text_save(self, tmp_path):
        out_file = tmp_path / "t.txt"
        assert main([
            "trace", "--workload", "ferret", "--requests", "50",
            "--out", str(out_file),
        ]) == 0
        assert out_file.read_text().startswith("# workload=ferret")

    @pytest.mark.parametrize("sweep", ["budget", "K", "L", "width", "flip"])
    def test_ablation_sweeps(self, sweep, capsys):
        assert main([
            "ablation", "--sweep", sweep, "--requests", "150",
            "--workload", "dedup",
        ]) == 0
        assert "mean units" in capsys.readouterr().out


class TestServiceCommands:
    """The service verbs degrade gracefully without a server."""

    def test_submit_degrades_to_in_process(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE", raising=False)
        code = main([
            "submit", "--schemes", "dcw", "--workloads", "swaptions",
            "--requests", "100",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded mode" in out
        assert "1/1 done" in out

    def test_submit_json_artifact(self, capsys, monkeypatch, tmp_path):
        import json

        monkeypatch.delenv("REPRO_SERVICE", raising=False)
        artifact = tmp_path / "job.json"
        code = main([
            "submit", "--schemes", "dcw", "--workloads", "swaptions",
            "--requests", "100", "--json", str(artifact),
        ])
        assert code == 0
        reply = json.loads(artifact.read_text())
        assert reply["state"] == "done"
        assert len(reply["rows"]) == 1
        assert reply["rows"][0]["scheme"] == "dcw"

    @pytest.mark.parametrize("argv", [["status"], ["watch", "j0"], ["cancel", "j0"]])
    def test_query_verbs_require_an_endpoint(self, argv, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE", raising=False)
        assert main(argv) == 2
        assert "no endpoint" in capsys.readouterr().out

    def test_unreachable_endpoint_is_a_clean_failure(self, capsys, tmp_path):
        code = main([
            "status", "--endpoint", f"unix:{tmp_path}/nope.sock",
        ])
        assert code == 2
        assert "cannot reach service" in capsys.readouterr().out

    def test_drain_requires_an_endpoint(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE", raising=False)
        assert main(["serve", "--drain"]) == 2
        assert "no endpoint" in capsys.readouterr().out

    def test_serve_binds_the_endpoint_flag(self, tmp_path):
        """``serve --endpoint unix:PATH`` binds that socket (regression:
        the flag was drain-only and serving fell back to the TCP default),
        and a drain-triggered exit is clean — rc 0, no tracebacks."""
        import json as _json
        import os
        import socket
        import subprocess
        import sys
        import time

        sock = tmp_path / "tw.sock"
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--endpoint", f"unix:{sock}",
             "--state-dir", str(tmp_path / "state"), "--no-fsync"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not sock.exists():
                assert proc.poll() is None, proc.stdout.read()
                assert time.monotonic() < deadline, "server never bound"
                time.sleep(0.05)
            with socket.socket(socket.AF_UNIX) as s:
                s.connect(str(sock))
                s.sendall(b'{"v": 1, "verb": "drain"}\n')
                reply = _json.loads(s.makefile().readline())
            assert reply["ok"] is True
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert f"unix:{sock}" in out
        assert "Traceback" not in out
