"""The vectorized packer must agree with the scalar Algorithm 2.

This is the load-bearing equivalence of the fast experiment path: the
(result, subresult) pair from :func:`repro.core.batch.pack_batch` must be
bit-for-bit what the scalar scheduler produces for every row.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import TetrisScheduler
from repro.core.batch import pack_batch, service_units_batch

counts_matrix = st.lists(
    st.lists(st.integers(min_value=0, max_value=32), min_size=8, max_size=8),
    min_size=1,
    max_size=12,
)


def scalar_pack(n_set, n_reset, K=8, L=2.0, budget=128.0, allow_split=False):
    sched = TetrisScheduler(K, L, budget, allow_split=allow_split).schedule(
        np.array(n_set), np.array(n_reset)
    )
    return sched.result, sched.subresult


class TestEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(counts_matrix, counts_matrix)
    def test_matches_scalar_default_operating_point(self, m_set, m_reset):
        n = min(len(m_set), len(m_reset))
        n_set = np.array(m_set[:n])
        n_reset = np.array(m_reset[:n])
        packed = pack_batch(n_set, n_reset)
        for i in range(n):
            r, s = scalar_pack(n_set[i], n_reset[i])
            assert packed.result[i] == r, f"row {i}: result mismatch"
            assert packed.subresult[i] == s, f"row {i}: subresult mismatch"

    @settings(max_examples=60, deadline=None)
    @given(
        counts_matrix,
        st.integers(min_value=1, max_value=16),
        st.floats(min_value=1.0, max_value=4.0),
        st.sampled_from([70.0, 100.0, 128.0, 200.0]),
    )
    def test_matches_scalar_across_operating_points(self, m, K, L, budget):
        n_set = np.array(m)
        n_reset = np.array(m[::-1])
        packed = pack_batch(n_set, n_reset, K=K, L=L, power_budget=budget, allow_split=True)
        for i in range(len(m)):
            r, s = scalar_pack(
                n_set[i], n_reset[i], K=K, L=L, budget=budget, allow_split=True
            )
            assert packed.result[i] == r
            assert packed.subresult[i] == s

    @settings(max_examples=60, deadline=None)
    @given(counts_matrix)
    def test_split_mode_matches_scalar_small_budget(self, m):
        n_set = np.array(m)
        n_reset = np.zeros_like(n_set)
        packed = pack_batch(n_set, n_reset, power_budget=16.0, allow_split=True)
        for i in range(len(m)):
            r, s = scalar_pack(n_set[i], n_reset[i], budget=16.0, allow_split=True)
            assert packed.result[i] == r
            assert packed.subresult[i] == s

    @settings(max_examples=60, deadline=None)
    @given(
        counts_matrix,
        st.sampled_from([(5.0, 2.0), (5.5, 1.5), (4.0, 1.5), (9.0, 3.0)]),
    )
    def test_split_mode_fractional_budget_cost_ratios(self, m, point):
        """Budget/cost pairs that do not divide evenly: the bit-integral
        split (floor(budget/cost) whole cells per chunk) must agree
        between the scalar and vectorized packers.  These ratios are the
        ones the pre-fix current-sliced split got wrong (see
        tests/fixtures/oracle/chunk_split_*.json)."""
        budget, L = point
        n_set = np.array(m)
        n_reset = np.array(m[::-1])
        packed = pack_batch(
            n_set, n_reset, L=L, power_budget=budget, allow_split=True
        )
        for i in range(len(m)):
            r, s = scalar_pack(
                n_set[i], n_reset[i], L=L, budget=budget, allow_split=True
            )
            assert packed.result[i] == r, f"row {i}: result mismatch"
            assert packed.subresult[i] == s, f"row {i}: subresult mismatch"


class TestBatchAPI:
    def test_single_row_shapes(self):
        packed = pack_batch([1, 2, 3, 0, 0, 0, 0, 0], [0] * 8)
        assert packed.result.shape == (1,)
        assert packed.subresult.shape == (1,)

    def test_service_units_shortcut(self):
        n_set = np.array([[16] * 8])
        units = service_units_batch(n_set, np.zeros_like(n_set))
        assert units[0] == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pack_batch(np.zeros((2, 8)), np.zeros((3, 8)))

    def test_overflow_without_split_raises(self):
        with pytest.raises(ValueError):
            pack_batch([[40] + [0] * 7], [[0] * 8], power_budget=32.0)

    def test_write0_overflow_without_split_raises(self):
        with pytest.raises(ValueError):
            pack_batch([[0] * 8], [[30] + [0] * 7], power_budget=32.0)

    def test_service_ns(self):
        packed = pack_batch([[16] * 8], [[0] * 8])
        assert packed.service_ns(430.0)[0] == pytest.approx(430.0)


class TestBatchPerformance:
    def test_large_batch_runs(self):
        rng = np.random.default_rng(0)
        n_set = rng.poisson(6.7, size=(5000, 8))
        n_reset = rng.poisson(2.9, size=(5000, 8))
        units = service_units_batch(n_set, n_reset)
        assert units.shape == (5000,)
        assert (units >= 0).all()
        # The paper's average regime: close to one write unit.
        assert 0.9 < units.mean() < 1.5
