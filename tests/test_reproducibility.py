"""Cross-invocation reproducibility: results must not depend on the
interpreter's randomized string hashing (PYTHONHASHSEED).

Regression test for a real bug: the trace generator once seeded with
``hash(workload_name)``, making every pytest invocation generate
different traces and the benches flaky across runs.
"""

import os
import subprocess
import sys

SNIPPET = """
from repro.trace.synthetic import generate_trace
from repro.experiments.fullsystem import run_fullsystem
t = generate_trace("dedup", 120, seed=7)
r = run_fullsystem(t, "tetris")
print(int(t.records["line"].sum()), int(t.write_counts.sum()),
      f"{r.runtime_ns:.3f}", f"{r.mean_read_latency_ns:.6f}")
"""


def _run(hashseed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    proc = subprocess.run(
        [sys.executable, "-c", SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-1500:]
    return proc.stdout.strip()


class TestCrossInvocationDeterminism:
    def test_results_identical_across_hash_seeds(self):
        a = _run("0")
        b = _run("424242")
        assert a == b, f"hash-seed dependence: {a!r} != {b!r}"

    def test_results_identical_across_repeat_runs(self):
        assert _run("random") == _run("random")
