"""Fastpath lane: envelope boundaries, agreement, certificates, kernels.

The load-bearing guarantees (ISSUE 9):

* the envelope routes every unverified regime (faults, ablation knobs,
  supplied traces, unpriced schemes) to the DES, and ``force`` raises a
  structured error instead of silently pricing outside it;
* ``REPRO_NO_FASTPATH=1`` / ``fastpath="off"`` keep rows byte-identical
  to the pre-fastpath engine, and ``REPRO_NO_VECTOR=1`` selects scalar
  kernels that are bit-identical to the vectorized ones;
* every run emits a lane certificate, and a full differential recheck
  of a small grid shows zero divergences under the agreement bands.
"""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.config import default_config
from repro.core.read_stage import popcount_line, read_stage, read_stage_batch
from repro.fastpath import (
    CERTIFICATE_VERSION,
    FIELD_TOLERANCES,
    FastpathEnvelopeError,
    PRICED_SCHEMES,
    classify,
    select_recheck_indices,
)
from repro.fastpath.pricer import READ_ENERGY_PER_LINE
from repro.parallel import ResultCache, SweepEngine
from repro.pcm.energy import EnergyModel
from repro.pcm.state import cell_diff, cell_diff_batch
from repro.schemes import SCHEME_REGISTRY
from repro.util import kernelstats

SCHEMES = ("dcw", "tetris", "flip_n_write")
WORKLOADS = ("dedup", "vips")
REQUESTS = 250


def row_bytes(rows) -> list[str]:
    return [json.dumps(dataclasses.asdict(r), sort_keys=True) for r in rows]


def _cfg(**nested):
    """Default config with nested sub-config fields replaced.

    ``_cfg(memctrl={"write_pausing": True})`` replaces fields inside
    ``config.memctrl``; scalar kwargs replace top-level fields.
    """
    cfg = default_config()
    top = {}
    for name, value in nested.items():
        if isinstance(value, dict):
            top[name] = dataclasses.replace(getattr(cfg, name), **value)
        else:
            top[name] = value
    return cfg.replace(**top)


# ----------------------------------------------------------------------
# Envelope boundaries.
# ----------------------------------------------------------------------
def test_default_config_is_inside_for_every_priced_scheme():
    cfg = default_config()
    for scheme in sorted(PRICED_SCHEMES):
        decision = classify(cfg, scheme)
        assert decision.inside and decision.reasons == ()


def test_priced_schemes_cover_the_registry_exactly():
    # Every priced scheme must be registered (one priced but
    # unregistered could never be validated), and the deliberately
    # DES-only remainder is pinned so a new scheme registered without a
    # pricer can't silently fall back to DES forever unnoticed.
    assert PRICED_SCHEMES <= set(SCHEME_REGISTRY)
    assert set(SCHEME_REGISTRY) - PRICED_SCHEMES == {"palp"}


def test_unpriced_scheme_routes_to_des():
    decision = classify(default_config(), "mlc_tetris")
    assert not decision.inside
    assert "unpriced-scheme" in decision.reasons


@pytest.mark.parametrize(
    "nested, reason",
    [
        ({"faults": {"enabled": True}}, "faults-enabled"),
        ({"trace": {"enabled": True}}, "obs-tracing-enabled"),
        ({"memctrl": {"write_pausing": True}}, "write-pausing"),
        ({"memctrl": {"write_coalescing": True}}, "write-coalescing"),
        ({"memctrl": {"opportunistic_drain": True}}, "opportunistic-drain"),
        ({"memctrl": {"drain_order": "sjf"}}, "drain-order-not-fifo"),
        ({"organization": {"subarrays_per_bank": 2}}, "subarray-parallelism"),
        ({"cpu": {"max_outstanding_reads": 2}}, "memory-level-parallelism"),
        ({"cpu": {"num_cores": 64}}, "read-queue-pressure"),
        ({"power": {"power_budget_per_chip": 0.4}}, "budget-below-cell-cost"),
    ],
)
def test_each_unverified_regime_routes_to_des(nested, reason):
    decision = classify(_cfg(**nested), "tetris")
    assert not decision.inside
    assert reason in decision.reasons


def test_supplied_trace_routes_to_des():
    decision = classify(default_config(), "tetris", supplied_trace=True)
    assert decision.reasons == ("supplied-trace",)


def test_reasons_accumulate():
    cfg = _cfg(
        faults={"enabled": True},
        memctrl={"write_pausing": True, "drain_order": "sjf"},
    )
    decision = classify(cfg, "mlc_tetris")
    assert set(decision.reasons) >= {
        "unpriced-scheme", "faults-enabled", "write-pausing",
        "drain-order-not-fifo",
    }


def test_forced_fastpath_outside_envelope_is_a_structured_error():
    eng = SweepEngine(
        config=_cfg(faults={"enabled": True}),
        requests_per_core=REQUESTS,
        cache=False,
        fastpath="force",
    )
    with pytest.raises(FastpathEnvelopeError) as exc:
        eng.plan(("tetris",), ("dedup",))
    assert exc.value.scheme == "tetris"
    assert exc.value.workload == "dedup"
    assert "faults-enabled" in exc.value.reasons
    assert "--fastpath auto" in str(exc.value)


def test_engine_rejects_unknown_lane_policy():
    with pytest.raises(ValueError):
        SweepEngine(fastpath="sometimes")
    with pytest.raises(ValueError):
        SweepEngine(recheck_fraction=1.5)


# ----------------------------------------------------------------------
# Kill switches and byte-compatibility.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def legacy_rows():
    eng = SweepEngine(
        requests_per_core=REQUESTS, cache=False, fastpath="off"
    )
    res = eng.run(SCHEMES, WORKLOADS)
    res.raise_errors()
    return res


def test_fastpath_off_marks_every_cell_des(legacy_rows):
    assert legacy_rows.stats.fastpath_cells == 0
    assert legacy_rows.stats.des_cells == legacy_rows.stats.cells
    assert legacy_rows.certificate["mode"] == "off"
    assert all(
        c["lane"] == "des" and c["reasons"] == ["fastpath-off"]
        for c in legacy_rows.certificate["cells"]
    )


def test_no_fastpath_env_overrides_auto_byte_identically(
    legacy_rows, monkeypatch
):
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    eng = SweepEngine(
        requests_per_core=REQUESTS, cache=False, fastpath="auto"
    )
    assert eng.fastpath_mode() == "off"
    res = eng.run(SCHEMES, WORKLOADS)
    res.raise_errors()
    assert res.stats.fastpath_cells == 0
    assert row_bytes(res.rows) == row_bytes(legacy_rows.rows)


def test_fastpath_rows_match_des_within_bands(legacy_rows):
    eng = SweepEngine(
        requests_per_core=REQUESTS, cache=False, fastpath="force",
        recheck_fraction=1.0,
    )
    res = eng.run(SCHEMES, WORKLOADS)
    res.raise_errors()
    s = res.stats
    assert s.fastpath_cells == s.cells == len(SCHEMES) * len(WORKLOADS)
    assert s.des_cells == 0
    # The analytic lane marks its rows: no DES events were simulated.
    assert all(r.events == 0 for r in res.rows)
    # Full differential recheck: every cell re-ran on the DES and agreed
    # within the field tolerance bands.
    assert s.recheck_samples == s.cells
    assert s.recheck_divergences == 0
    # And the same bands hold against an independently computed DES run.
    fields = [t.field for t in FIELD_TOLERANCES]
    for fast, des in zip(res.rows, legacy_rows.rows):
        fast_d, des_d = dataclasses.asdict(fast), dataclasses.asdict(des)
        for tol in FIELD_TOLERANCES:
            assert tol.accepts(fast_d[tol.field], des_d[tol.field]), (
                f"{fast.workload}/{fast.scheme}: {tol.field} "
                f"fast={fast_d[tol.field]} des={des_d[tol.field]}"
            )
    assert "read_latency_ns" in fields and "ipc" in fields


# ----------------------------------------------------------------------
# Certificate.
# ----------------------------------------------------------------------
def test_certificate_schema_and_file(tmp_path):
    cert_path = tmp_path / "cert.json"
    eng = SweepEngine(
        requests_per_core=REQUESTS, cache=False, fastpath="auto",
        recheck_fraction=1.0, certificate_path=cert_path,
    )
    res = eng.run(("tetris", "dcw"), ("dedup",))
    res.raise_errors()
    cert = json.loads(cert_path.read_text())
    assert cert == res.certificate
    assert cert["version"] == CERTIFICATE_VERSION
    assert cert["mode"] == "auto"
    assert cert["recheck_fraction"] == 1.0
    assert cert["summary"] == {
        "cells": 2,
        "fastpath": 2,
        "des": 0,
        "recheck_samples": 2,
        "recheck_divergences": 0,
    }
    for cell in cert["cells"]:
        assert set(cell) == {
            "index", "workload", "scheme", "seed", "variant", "lane",
            "source", "reasons",
        }
        assert cell["lane"] in ("fastpath", "des")
        assert cell["source"] == "executed"
    for rec in cert["rechecks"]:
        assert rec["divergences"] == []
        assert {"index", "workload", "scheme", "seed", "variant"} <= set(rec)


def test_recheck_sampling_is_seeded_and_bounded():
    cells = list(range(100))
    a = select_recheck_indices(cells, 0.05, 7)
    b = select_recheck_indices(cells, 0.05, 7)
    assert a == b and len(a) == 5
    assert select_recheck_indices(cells, 0.05, 8) != a  # seed moves sample
    assert select_recheck_indices(cells, 0.0, 7) == []  # 0 disables
    assert len(select_recheck_indices([3], 0.001, 7)) == 1  # min 1 sample
    assert select_recheck_indices([], 1.0, 7) == []


# ----------------------------------------------------------------------
# Cache lane separation.
# ----------------------------------------------------------------------
def test_cache_keys_and_rows_are_lane_separated(tmp_path):
    cache = ResultCache(tmp_path / "store")
    assert cache.cell_key(
        config_json="{}", trace_key="t", scheme="tetris", lane="fastpath"
    ) != cache.cell_key(
        config_json="{}", trace_key="t", scheme="tetris", lane="des"
    )

    kwargs = dict(requests_per_core=REQUESTS, cache=cache)
    fast = SweepEngine(fastpath="force", recheck_fraction=0.0, **kwargs)
    fast.run(("tetris",), ("dedup",)).raise_errors()
    # A DES-lane run over the same grid must not be served analytic rows.
    des = SweepEngine(fastpath="off", **kwargs)
    res = des.run(("tetris",), ("dedup",))
    res.raise_errors()
    assert res.stats.cache_hits == 0
    assert res.stats.executed == 1
    assert res.rows[0].events > 0
    report = cache.report()
    assert report["by_lane"] == {"des": 1, "fastpath": 1}


# ----------------------------------------------------------------------
# Vectorized kernels vs scalar reference.
# ----------------------------------------------------------------------
def _kernel_cases():
    rng = np.random.default_rng(20160816)
    rand = rng.integers(0, 1 << 64, size=(6, 8), dtype=np.uint64)
    adversarial = np.array(
        [
            [0] * 8,                                  # all zeros
            [0xFFFF_FFFF_FFFF_FFFF] * 8,              # all ones
            [0xAAAA_AAAA_AAAA_AAAA] * 8,              # alternating
            [1, 0, 0, 0, 0, 0, 0, 1 << 63],           # single bits
        ],
        dtype=np.uint64,
    )
    return np.concatenate([rand, adversarial])


@pytest.mark.parametrize("unit_bits", [64, 32])
@pytest.mark.parametrize("count_flip_bit", [False, True])
def test_scalar_read_stage_is_bit_identical(
    monkeypatch, unit_bits, count_flip_bit
):
    cases = _kernel_cases()
    flips = np.tile([False, True], cases.shape[1] // 2)
    for old in cases:
        for new in cases:
            monkeypatch.delenv("REPRO_NO_VECTOR", raising=False)
            vec = read_stage(
                old, flips, new,
                unit_bits=unit_bits, count_flip_bit=count_flip_bit,
            )
            monkeypatch.setenv("REPRO_NO_VECTOR", "1")
            ref = read_stage(
                old, flips, new,
                unit_bits=unit_bits, count_flip_bit=count_flip_bit,
            )
            for name in ("flip", "physical", "n_set", "n_reset"):
                assert np.array_equal(
                    getattr(vec, name), getattr(ref, name)
                ), f"{name} diverged (unit_bits={unit_bits})"


def test_scalar_batch_and_diff_kernels_are_bit_identical(monkeypatch):
    cases = _kernel_cases()
    flips = np.zeros(cases.shape, dtype=bool)
    flips[:, ::2] = True
    old, new = cases, cases[::-1].copy()

    monkeypatch.delenv("REPRO_NO_VECTOR", raising=False)
    vec_rs = read_stage_batch(old, flips, new)
    vec_diff = cell_diff_batch(old, new)
    vec_cd = [cell_diff(o, n) for o, n in zip(old, new)]
    vec_pop = [popcount_line(row) for row in cases]

    monkeypatch.setenv("REPRO_NO_VECTOR", "1")
    ref_rs = read_stage_batch(old, flips, new)
    ref_diff = cell_diff_batch(old, new)
    ref_cd = [cell_diff(o, n) for o, n in zip(old, new)]
    ref_pop = [popcount_line(row) for row in cases]

    for name in ("flip", "physical", "n_set", "n_reset"):
        assert np.array_equal(getattr(vec_rs, name), getattr(ref_rs, name))
    assert np.array_equal(vec_diff[0], ref_diff[0])
    assert np.array_equal(vec_diff[1], ref_diff[1])
    assert vec_cd == ref_cd
    assert vec_pop == ref_pop
    # cell_diff_batch must agree with per-row cell_diff too.
    assert [tuple(map(int, t)) for t in zip(*vec_diff)] == vec_cd


def test_kernel_counters_track_dispatch(monkeypatch):
    units = np.arange(8, dtype=np.uint64)
    flips = np.zeros(8, dtype=bool)
    kernelstats.reset()
    monkeypatch.delenv("REPRO_NO_VECTOR", raising=False)
    read_stage(units, flips, units)
    popcount_line(units)
    assert kernelstats.snapshot() == {"vectorized": 2, "scalar": 0}
    monkeypatch.setenv("REPRO_NO_VECTOR", "1")
    read_stage(units, flips, units)
    assert kernelstats.snapshot() == {"vectorized": 2, "scalar": 1}
    kernelstats.reset()
    assert kernelstats.snapshot() == {"vectorized": 0, "scalar": 0}


def test_scalar_kernels_reproduce_a_functional_run(monkeypatch):
    # One end-to-end run under REPRO_NO_VECTOR: the functional service
    # model drives every write through the scheme pipeline (and thus the
    # scalar kernels); its outcomes must match the vectorized run.
    from repro.experiments.fullsystem import run_fullsystem
    from repro.trace.synthetic import generate_trace

    trace = generate_trace("dedup", 120, num_cores=4, seed=7)

    monkeypatch.delenv("REPRO_NO_VECTOR", raising=False)
    vec = run_fullsystem(trace, "tetris", functional=True)
    monkeypatch.setenv("REPRO_NO_VECTOR", "1")
    ref = run_fullsystem(trace, "tetris", functional=True)
    for name in ("runtime_ns", "ipc", "mean_write_latency_ns"):
        assert getattr(ref, name) == getattr(vec, name), name  # exact


# ----------------------------------------------------------------------
# Constants pinned to the models they mirror.
# ----------------------------------------------------------------------
def test_pricer_constants_match_the_energy_model():
    # Exact pins (tolerance 0): the pricer hard-codes these mirrors.
    exact = dict(rel_tol=0.0, abs_tol=0.0)
    assert math.isclose(
        READ_ENERGY_PER_LINE, EnergyModel().read_energy_per_line, **exact
    )
    cfg = default_config()
    model = EnergyModel(
        t_set_ns=cfg.timings.t_set_ns,
        t_reset_ns=cfg.timings.t_reset_ns,
        reset_current_ratio=cfg.L,
    )
    assert math.isclose(model.e_set, cfg.timings.t_set_ns, **exact)
    assert math.isclose(model.e_reset, cfg.L * cfg.timings.t_reset_ns, **exact)


# ----------------------------------------------------------------------
# Service surface.
# ----------------------------------------------------------------------
def test_grid_spec_validates_and_threads_fastpath():
    from repro.service.jobs import GridSpec
    from repro.service.protocol import ProtocolError

    spec = GridSpec.from_dict(
        {"schemes": ["tetris"], "workloads": ["dedup"], "fastpath": "auto"}
    )
    assert spec.fastpath == "auto"
    assert spec.to_dict()["fastpath"] == "auto"
    assert spec.engine(cache=False).fastpath == "auto"
    # Default stays the byte-compatible slow lane.
    default = GridSpec.from_dict(
        {"schemes": ["tetris"], "workloads": ["dedup"]}
    )
    assert default.fastpath == "off"
    assert all(pc.lane == "des" for pc in default.plan(cache=False))
    with pytest.raises(ProtocolError):
        GridSpec.from_dict(
            {"schemes": ["tetris"], "workloads": ["dedup"],
             "fastpath": "always"}
        )
