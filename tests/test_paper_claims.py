"""Shape-level reproduction of the paper's headline claims.

These integration tests assert the *qualitative* results of the
evaluation section — who wins, the ordering, and rough magnitudes — on
moderately sized synthetic runs.  Exact percentages depend on the
substituted substrate (DESIGN.md §4) and are recorded in EXPERIMENTS.md;
here we pin the invariants that must hold for the reproduction to be
faithful.
"""

import numpy as np
import pytest

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.fig03 import run_fig03
from repro.experiments.fig10 import run_fig10
from repro.experiments.runner import run_schemes_on_workloads

SCHEMES = ("dcw", "flip_n_write", "two_stage", "three_stage", "tetris")
HEAVY_WORKLOADS = ("dedup", "ferret", "vips")


@pytest.fixture(scope="module")
def grid():
    """One shared medium-size grid over three memory-heavy workloads."""
    return run_schemes_on_workloads(
        SCHEMES, HEAVY_WORKLOADS, requests_per_core=1200, seed=20160816
    )


def norm(grid, metric):
    """Per-workload normalized metric dict: {workload: {scheme: value}}."""
    base = {r.workload: r for r in grid if r.scheme == "dcw"}
    out = {}
    for r in grid:
        out.setdefault(r.workload, {})[r.scheme] = r.normalized(base[r.workload])[
            metric
        ]
    return out


class TestObservation1:
    def test_average_bit_writes_small(self):
        """Observation 1: ~9.6 bit-writes per 64-bit unit (about 15 %)."""
        rows = run_fig03(requests_per_core=800)
        total = arithmetic_mean([r.total for r in rows])
        assert 7.0 <= total <= 12.0
        sets = arithmetic_mean([r.mean_set for r in rows])
        resets = arithmetic_mean([r.mean_reset for r in rows])
        assert sets > resets  # SET-dominant overall


class TestObservation2:
    def test_heterogeneity_across_workloads(self):
        rows = {r.workload: r for r in run_fig03(requests_per_core=800)}
        assert rows["blackscholes"].total < 4
        assert rows["vips"].total > 14

    def test_ferret_and_vips_fifty_fifty(self):
        rows = {r.workload: r for r in run_fig03(requests_per_core=800)}
        for name in ("ferret", "vips"):
            share = rows[name].mean_set / rows[name].total
            assert 0.45 <= share <= 0.62


class TestFig10Claims:
    def test_tetris_average_band(self):
        rows = run_fig10(requests_per_core=800)
        values = [r.tetris for r in rows]
        # Paper: 1.06 to 1.46 write units on average.
        assert 0.95 <= min(values)
        assert max(values) <= 1.6
        assert all(r.tetris < r.three_stage for r in rows)

    def test_heavy_workloads_use_more_units(self):
        rows = {r.workload: r for r in run_fig10(requests_per_core=800)}
        light = rows["blackscholes"].tetris
        for heavy in ("dedup", "vips"):
            assert rows[heavy].tetris >= light


class TestFig11To14Ordering:
    """Every workload must exhibit the paper's ranking:
    tetris > three_stage > two_stage > flip_n_write > dcw."""

    def test_read_latency_ranking(self, grid):
        for wl, values in norm(grid, "read_latency").items():
            assert (
                values["tetris"]
                < values["three_stage"]
                < values["two_stage"]
                < values["flip_n_write"]
                < 1.0 + 1e-9
            ), wl

    def test_write_latency_ranking(self, grid):
        for wl, values in norm(grid, "write_latency").items():
            assert values["tetris"] < values["three_stage"] <= values["two_stage"], wl
            assert values["tetris"] < 1.0, wl

    def test_ipc_ranking(self, grid):
        for wl, values in norm(grid, "ipc_improvement").items():
            assert (
                values["tetris"]
                > values["three_stage"]
                > values["two_stage"]
                > values["flip_n_write"]
                > 1.0 - 1e-9
            ), wl

    def test_running_time_ranking(self, grid):
        for wl, values in norm(grid, "running_time").items():
            assert (
                values["tetris"]
                < values["three_stage"]
                < values["two_stage"]
                < values["flip_n_write"]
                < 1.0 + 1e-9
            ), wl


class TestMagnitudes:
    """Loose magnitude bands around the paper's averages (46 % runtime
    reduction, 2x IPC, 65 % read-latency reduction on memory-bound
    workloads)."""

    def test_tetris_runtime_reduction_substantial(self, grid):
        values = norm(grid, "running_time")
        mean_rt = arithmetic_mean([v["tetris"] for v in values.values()])
        assert mean_rt < 0.70   # at least ~30 % reduction on heavy workloads

    def test_tetris_ipc_improvement_substantial(self, grid):
        values = norm(grid, "ipc_improvement")
        mean_ipc = arithmetic_mean([v["tetris"] for v in values.values()])
        assert mean_ipc > 1.5

    def test_tetris_read_latency_reduction_substantial(self, grid):
        values = norm(grid, "read_latency")
        mean_rd = arithmetic_mean([v["tetris"] for v in values.values()])
        assert mean_rd < 0.5


class TestReadDominantNuance:
    """§V.B.3: blackscholes/swaptions show little write-latency gain —
    the write queue rarely fills, so waiting dominates service time."""

    def test_write_latency_gain_small_for_light_workloads(self):
        grid = run_schemes_on_workloads(
            ("dcw", "tetris"), ("blackscholes", "swaptions"),
            requests_per_core=800,
        )
        base = {r.workload: r for r in grid if r.scheme == "dcw"}
        for r in grid:
            if r.scheme != "tetris":
                continue
            ratio = r.normalized(base[r.workload])["write_latency"]
            assert ratio > 0.85, (
                f"{r.workload}: expected weak write-latency improvement, "
                f"got ratio {ratio:.3f}"
            )
