"""Shape-level reproduction of the paper's headline claims.

These integration tests assert the *qualitative* results of the
evaluation section — who wins, the ordering, and rough magnitudes — on
moderately sized synthetic runs.  Every numeric band comes from the
golden ledger in :mod:`repro.oracle.paper_claims`, which pins each
claim's paper provenance and tolerance in one place; here we only run
the experiments and feed the measurements to the ledger.  Exact
percentages depend on the substituted substrate (DESIGN.md §4) and are
recorded in EXPERIMENTS.md.
"""

import pytest

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.fig03 import run_fig03
from repro.experiments.fig10 import run_fig10
from repro.experiments.runner import run_schemes_on_workloads
from repro.oracle.paper_claims import RANKINGS, band, expect

SCHEMES = ("dcw", "flip_n_write", "two_stage", "three_stage", "tetris")
HEAVY_WORKLOADS = ("dedup", "ferret", "vips")


@pytest.fixture(scope="module")
def grid():
    """One shared medium-size grid over three memory-heavy workloads."""
    return run_schemes_on_workloads(
        SCHEMES, HEAVY_WORKLOADS, requests_per_core=1200, seed=20160816
    )


def norm(grid, metric):
    """Per-workload normalized metric dict: {workload: {scheme: value}}."""
    base = {r.workload: r for r in grid if r.scheme == "dcw"}
    out = {}
    for r in grid:
        out.setdefault(r.workload, {})[r.scheme] = r.normalized(base[r.workload])[
            metric
        ]
    return out


def assert_ranked(values: dict, metric: str, workload: str) -> None:
    """Check one workload's scheme values against the ledger's ordering."""
    spec = RANKINGS[metric]
    order = spec["order"]
    ascending = spec["direction"] == "ascending"
    strict = spec.get("strict", True)
    seq = [values[s] for s in order]
    for a, b in zip(seq, seq[1:]):
        if strict:
            ok = a < b if ascending else a > b
        else:
            ok = a <= b if ascending else a >= b
        assert ok, f"{workload}/{metric}: {order} -> {seq} ({spec['source']})"
    # The best scheme must beat the DCW baseline (normalized 1.0).
    if ascending:
        assert seq[-1] < 1.0 + 1e-9, f"{workload}/{metric}"
    else:
        assert seq[-1] > 1.0 - 1e-9, f"{workload}/{metric}"


class TestObservation1:
    def test_average_bit_writes_small(self):
        """Observation 1: ~9.6 bit-writes per 64-bit unit (about 15 %)."""
        rows = run_fig03(requests_per_core=800)
        expect(
            "fig3_mean_bit_writes",
            arithmetic_mean([r.total for r in rows]),
        )
        sets = arithmetic_mean([r.mean_set for r in rows])
        resets = arithmetic_mean([r.mean_reset for r in rows])
        assert sets > resets  # SET-dominant overall


class TestObservation2:
    def test_heterogeneity_across_workloads(self):
        rows = {r.workload: r for r in run_fig03(requests_per_core=800)}
        expect("fig3_blackscholes_total", rows["blackscholes"].total)
        expect("fig3_vips_total", rows["vips"].total)

    def test_ferret_and_vips_fifty_fifty(self):
        rows = {r.workload: r for r in run_fig03(requests_per_core=800)}
        for name in ("ferret", "vips"):
            expect(
                "fig3_set_share_5050",
                rows[name].mean_set / rows[name].total,
            )


class TestFig10Claims:
    def test_tetris_average_band(self):
        rows = run_fig10(requests_per_core=800)
        for r in rows:
            expect("fig10_tetris_units", r.tetris)
        assert all(r.tetris < r.three_stage for r in rows)

    def test_heavy_workloads_use_more_units(self):
        rows = {r.workload: r for r in run_fig10(requests_per_core=800)}
        light = rows["blackscholes"].tetris
        for heavy in ("dedup", "vips"):
            assert rows[heavy].tetris >= light


class TestFig11To14Ordering:
    """Every workload must exhibit the ledger's per-metric ranking:
    tetris beats three_stage beats two_stage beats flip_n_write."""

    @pytest.mark.parametrize("metric", sorted(RANKINGS))
    def test_ranking(self, metric, grid):
        for wl, values in norm(grid, metric).items():
            assert_ranked(values, metric, wl)

    def test_tetris_write_latency_improves(self, grid):
        for wl, values in norm(grid, "write_latency").items():
            assert values["tetris"] < 1.0, wl


class TestMagnitudes:
    """Magnitude bands around the paper's averages (Figs 11-13); the
    ledger records both the paper's point value and our band."""

    def test_tetris_runtime_reduction_substantial(self, grid):
        values = norm(grid, "running_time")
        expect(
            "fig11_tetris_runtime",
            arithmetic_mean([v["tetris"] for v in values.values()]),
        )

    def test_tetris_ipc_improvement_substantial(self, grid):
        values = norm(grid, "ipc_improvement")
        expect(
            "fig12_tetris_ipc",
            arithmetic_mean([v["tetris"] for v in values.values()]),
        )

    def test_tetris_read_latency_reduction_substantial(self, grid):
        values = norm(grid, "read_latency")
        expect(
            "fig13_tetris_read_latency",
            arithmetic_mean([v["tetris"] for v in values.values()]),
        )


class TestReadDominantNuance:
    """§V.B.3: blackscholes/swaptions show little write-latency gain —
    the write queue rarely fills, so waiting dominates service time."""

    def test_write_latency_gain_small_for_light_workloads(self):
        grid = run_schemes_on_workloads(
            ("dcw", "tetris"), ("blackscholes", "swaptions"),
            requests_per_core=800,
        )
        base = {r.workload: r for r in grid if r.scheme == "dcw"}
        claim = band("light_write_latency_ratio")
        for r in grid:
            if r.scheme != "tetris":
                continue
            ratio = r.normalized(base[r.workload])["write_latency"]
            assert claim.holds(ratio), (
                f"{r.workload}: expected weak write-latency improvement, "
                f"got ratio {ratio:.3f} ({claim.source})"
            )
