"""Differential test: the DES controller vs. an analytic FCFS oracle.

For read-only traffic the controller is exactly per-bank FCFS with
deterministic service, so every completion time is computable in closed
form: ``finish_i = max(arrival_i, finish_{i-1 on same bank}) + D``.
The event-driven implementation must match the oracle to the nanosecond
on random arrival patterns — any scheduling bug (lost kick, double
booking, heap misordering) breaks the equality.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MemCtrlConfig, default_config
from repro.memctrl.controller import MemoryController
from repro.memctrl.request import MemRequest, ReqKind
from repro.sim.engine import Simulator

D_READ = 50.0


class FlatService:
    def read_ns(self, req):
        return D_READ

    def write_ns(self, req):
        return D_READ

def fcfs_oracle(arrivals, banks, service=D_READ):
    """Closed-form per-bank FCFS completion times."""
    finish = {}
    out = []
    for a, b in zip(arrivals, banks):
        start = max(a, finish.get(b, 0.0))
        finish[b] = start + service
        out.append(finish[b])
    return out


def run_des(arrivals, lines):
    cfg = default_config().replace(
        memctrl=MemCtrlConfig(read_queue_entries=4096)
    )
    sim = Simulator()
    ctrl = MemoryController(sim, cfg, FlatService(), enable_forwarding=False)
    finishes = {}

    def make_req(i, line):
        return MemRequest(
            req_id=i, kind=ReqKind.READ, core=0, line=line, bank=line % 8,
            on_done=lambda r, i=i: finishes.__setitem__(i, r.finish_ns),
        )

    for i, (a, line) in enumerate(zip(arrivals, lines)):
        sim.at(a, lambda i=i, line=line: ctrl.submit(make_req(i, line)))
    sim.run()
    return [finishes[i] for i in range(len(arrivals))]


arrival_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10_000.0),
        st.integers(min_value=0, max_value=63),
    ),
    min_size=1,
    max_size=60,
)


class TestOracleEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(arrival_lists)
    def test_des_matches_fcfs_oracle(self, items):
        items.sort(key=lambda x: x[0])
        arrivals = [t for t, _ in items]
        lines = [ln for _, ln in items]
        banks = [ln % 8 for ln in lines]
        des = run_des(arrivals, lines)
        oracle = fcfs_oracle(arrivals, banks)
        for i, (a, b) in enumerate(zip(des, oracle)):
            assert a == pytest.approx(b, abs=1e-6), f"request {i}"

    def test_burst_to_one_bank(self):
        arrivals = [0.0] * 10
        lines = [0] * 10
        des = run_des(arrivals, lines)
        assert des == pytest.approx([D_READ * (i + 1) for i in range(10)])

    def test_spread_across_banks(self):
        arrivals = [0.0] * 8
        lines = list(range(8))
        des = run_des(arrivals, lines)
        assert des == pytest.approx([D_READ] * 8)

    @settings(max_examples=20, deadline=None)
    @given(arrival_lists)
    def test_total_busy_time_conserved(self, items):
        """Bank busy time must equal requests x service, exactly."""
        items.sort(key=lambda x: x[0])
        arrivals = [t for t, _ in items]
        lines = [ln for _, ln in items]
        cfg = default_config().replace(
            memctrl=MemCtrlConfig(read_queue_entries=4096)
        )
        sim = Simulator()
        ctrl = MemoryController(sim, cfg, FlatService(), enable_forwarding=False)
        for i, (a, line) in enumerate(zip(arrivals, lines)):
            sim.at(a, lambda i=i, line=line: ctrl.submit(
                MemRequest(req_id=i, kind=ReqKind.READ, core=0,
                           line=line, bank=line % 8)
            ))
        sim.run()
        total_busy = sum(ctrl.stats.bank_busy_ns.values())
        assert total_busy == pytest.approx(len(items) * D_READ)
