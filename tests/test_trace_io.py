"""Round-trip tests for the trace persistence formats."""

import numpy as np
import pytest

from repro.trace.io import load_trace, load_trace_text, save_trace, save_trace_text
from repro.trace.synthetic import generate_trace


@pytest.fixture
def trace():
    return generate_trace("ferret", requests_per_core=150, seed=99)


class TestNPZ:
    def test_roundtrip_bit_exact(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        back = load_trace(path)
        assert back.workload == trace.workload
        assert back.seed == trace.seed
        assert back.units_per_line == trace.units_per_line
        assert np.array_equal(back.records, trace.records)
        assert np.array_equal(back.write_counts, trace.write_counts)

    def test_meta_preserved(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        back = load_trace(path)
        assert back.meta["requests_per_core"] == 150


class TestText:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.txt"
        save_trace_text(trace, path)
        back = load_trace_text(path)
        assert back.workload == trace.workload
        assert np.array_equal(back.records["line"], trace.records["line"])
        assert np.array_equal(back.records["op"], trace.records["op"])
        assert np.array_equal(back.records["gap"], trace.records["gap"])
        assert np.array_equal(back.write_counts, trace.write_counts)

    def test_header_parsed(self, trace, tmp_path):
        path = tmp_path / "t.txt"
        save_trace_text(trace, path)
        back = load_trace_text(path)
        assert back.seed == trace.seed
        assert back.units_per_line == 8

    def test_malformed_write_row_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# workload=x seed=0 units=8\n0 W 10 5 1:2\n")
        with pytest.raises(ValueError):
            load_trace_text(path)

    def test_hand_written_trace(self, tmp_path):
        """The text format accepts externally produced traces."""
        path = tmp_path / "ext.txt"
        pairs = " ".join(["1:1"] * 8)
        path.write_text(
            "# workload=custom seed=7 units=8\n"
            "0 R 100 12\n"
            f"1 W 50 13 {pairs}\n"
        )
        t = load_trace_text(path)
        assert t.workload == "custom"
        assert t.n_reads == 1 and t.n_writes == 1
        assert t.write_counts[0, 0].tolist() == [1, 1]
