"""Chaos suite: the supervised sweep survives kills, hangs, and torn logs.

The load-bearing guarantees (ISSUE 7):

* a worker SIGKILLed mid-cell costs a retry, never a lost cell or a
  hung grid;
* a cell that blows its deadline is killed, retried, and — if it never
  stops hanging — quarantined as a structured ``CellError`` with
  ``attempts > 1``, while every other cell completes;
* a sweep killed mid-run resumes from its journal re-executing zero
  journaled cells, byte-identical to an uninterrupted run;
* a journal whose last line was torn by the crash loads cleanly
  (corrupt line counted, valid prefix kept);
* with zero injected faults the supervised engine is byte-identical to
  serial and all supervisor counters stay zero.

Fault injection is driven by the ``REPRO_CHAOS_*`` env gates in
``repro.parallel.engine._chaos_inject`` — deterministic, and dead code
unless the env vars are set.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.parallel import (
    CellError,
    ResultCache,
    RetryPolicy,
    SweepCellError,
    SweepEngine,
    SweepJournal,
    WorkerSupervisor,
    WorkerTaskError,
    parallel_map,
    retry_jitter,
)

SCHEMES = ("dcw", "tetris")
WORKLOADS = ("dedup", "vips")
REQUESTS = 200

FAST_RETRY = RetryPolicy(
    max_retries=2, backoff_base_s=0.01, backoff_cap_s=0.05,
    poll_interval_s=0.02,
)


def row_bytes(rows) -> list[str]:
    return [json.dumps(dataclasses.asdict(r), sort_keys=True) for r in rows]


@pytest.fixture()
def chaos_env(monkeypatch):
    """Guarantee the chaos gates never leak between tests."""
    monkeypatch.delenv("REPRO_CHAOS_KILL_ONCE", raising=False)
    monkeypatch.delenv("REPRO_CHAOS_HANG", raising=False)
    return monkeypatch


# ----------------------------------------------------------------------
# Supervisor unit behavior (no DES, cheap task functions).
# ----------------------------------------------------------------------
def _double(payload):
    return payload * 2


def _raise_value_error(payload):
    raise ValueError(f"boom {payload}")


def test_supervisor_runs_all_tasks_and_counts_nothing():
    sup = WorkerSupervisor(_double, workers=2, policy=FAST_RETRY)
    reports = list(sup.run((i, i) for i in range(8)))
    assert sorted(r.task_id for r in reports) == list(range(8))
    assert all(r.failure is None and r.value == r.task_id * 2 for r in reports)
    assert all(r.attempts == 1 for r in reports)
    counts = sup.counts()
    assert counts["dispatched"] == 8
    for key in ("retries", "timeouts", "worker_deaths", "serial_tasks"):
        assert counts[key] == 0


def test_supervisor_quarantines_persistent_exceptions():
    sup = WorkerSupervisor(
        _raise_value_error, workers=2,
        policy=RetryPolicy(max_retries=1, backoff_base_s=0.01),
    )
    reports = list(sup.run([(0, "x")]))
    assert len(reports) == 1
    r = reports[0]
    assert r.failure is not None
    assert r.failure.error_type == "ValueError"
    assert r.attempts == 2          # first try + one retry
    assert r.last_signal == "exception"
    assert sup.counts()["quarantined"] == 1


def test_retry_jitter_is_deterministic_and_bounded():
    values = [retry_jitter(7, task, attempt)
              for task in range(20) for attempt in range(3)]
    assert values == [retry_jitter(7, task, attempt)
                      for task in range(20) for attempt in range(3)]
    assert all(0.0 <= v < 1.0 for v in values)
    # Different coordinates must not collapse onto one value.
    assert len(set(values)) > 50


def test_backoff_grows_and_caps():
    policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.4, jitter=0.0)
    delays = [policy.backoff_s(0, a) for a in (1, 2, 3, 4, 5)]
    assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]


# ----------------------------------------------------------------------
# Chaos: SIGKILL mid-cell.
# ----------------------------------------------------------------------
def test_sigkilled_worker_is_retried_and_grid_completes(chaos_env, tmp_path):
    flag = tmp_path / "kill-once"
    flag.touch()
    chaos_env.setenv("REPRO_CHAOS_KILL_ONCE", f"{flag}:dedup:tetris")
    eng = SweepEngine(
        requests_per_core=REQUESTS, workers=2, cache=False, retry=FAST_RETRY
    )
    res = eng.run(SCHEMES, WORKLOADS)
    assert res.stats.errors == 0
    assert len(res.rows) == len(SCHEMES) * len(WORKLOADS)
    assert res.stats.worker_deaths >= 1
    assert res.stats.retries >= 1
    assert not flag.exists()        # the kill consumed its flag

    # The post-fault grid is byte-identical to a clean serial run.
    clean = SweepEngine(requests_per_core=REQUESTS, workers=1, cache=False)
    assert row_bytes(res.rows) == row_bytes(clean.run(SCHEMES, WORKLOADS).rows)


# ----------------------------------------------------------------------
# Chaos: deadline trip on a hung cell.
# ----------------------------------------------------------------------
def test_hung_cell_is_quarantined_with_attempts_gt_1(chaos_env):
    chaos_env.setenv("REPRO_CHAOS_HANG", "vips:tetris:60")
    eng = SweepEngine(
        requests_per_core=REQUESTS, workers=2, cache=False,
        cell_deadline_s=0.5,
        retry=RetryPolicy(max_retries=1, backoff_base_s=0.01,
                          poll_interval_s=0.02),
    )
    res = eng.run(SCHEMES, WORKLOADS)
    errors = res.errors
    assert len(errors) == 1
    err = errors[0]
    assert isinstance(err, CellError)
    assert (err.workload, err.scheme) == ("vips", "tetris")
    assert err.error_type == "CellTimeout"
    assert err.attempts == 2
    assert err.last_signal == "timeout"
    assert res.stats.timeouts == 2
    # Every other cell still completed.
    assert len(res.rows) == len(SCHEMES) * len(WORKLOADS) - 1
    assert "attempts=2" in err.format()


def test_raise_errors_is_one_line_per_cell_with_tracebacks_attr(chaos_env):
    chaos_env.setenv("REPRO_CHAOS_HANG", "vips:tetris:60")
    eng = SweepEngine(
        requests_per_core=REQUESTS, workers=2, cache=False,
        cell_deadline_s=0.5,
        retry=RetryPolicy(max_retries=0, poll_interval_s=0.02),
    )
    res = eng.run(SCHEMES, WORKLOADS)
    with pytest.raises(SweepCellError) as excinfo:
        res.raise_errors()
    exc = excinfo.value
    assert "vips x tetris" in str(exc)
    assert "CellTimeout" in str(exc)
    assert "Traceback" not in str(exc)           # summaries, not spam
    assert len(exc.tracebacks) == len(exc.errors) == 1


# ----------------------------------------------------------------------
# Chaos: kill the sweep, then resume from the journal.
# ----------------------------------------------------------------------
def test_resume_reexecutes_zero_journaled_cells(tmp_path):
    journal_path = tmp_path / "sweep.jsonl"
    # "Crash" after a partial grid: run only half the workloads.
    eng = SweepEngine(
        requests_per_core=REQUESTS, workers=2, cache=False,
        journal=journal_path,
    )
    partial = eng.run(SCHEMES, WORKLOADS[:1])
    assert partial.stats.errors == 0
    assert len(SweepJournal(journal_path).load()) == len(SCHEMES)

    resumed = SweepEngine(
        requests_per_core=REQUESTS, workers=2, cache=False,
        journal=journal_path,
    ).run(SCHEMES, WORKLOADS, resume=True)
    assert resumed.stats.resumed == len(SCHEMES)
    assert resumed.stats.executed == len(SCHEMES) * (len(WORKLOADS) - 1)
    assert all(
        o.resumed for o in resumed.outcomes if o.cell.workload == WORKLOADS[0]
    )

    uninterrupted = SweepEngine(
        requests_per_core=REQUESTS, workers=1, cache=False
    ).run(SCHEMES, WORKLOADS)
    assert row_bytes(resumed.rows) == row_bytes(uninterrupted.rows)


def test_resume_requires_a_journal():
    eng = SweepEngine(requests_per_core=REQUESTS, workers=1, cache=False)
    with pytest.raises(ValueError, match="journal"):
        eng.run(SCHEMES, WORKLOADS[:1], resume=True)


def test_resume_tolerates_a_truncated_last_line(tmp_path):
    journal_path = tmp_path / "sweep.jsonl"
    eng = SweepEngine(
        requests_per_core=REQUESTS, workers=1, cache=False,
        journal=journal_path,
    )
    eng.run(SCHEMES, WORKLOADS[:1])
    # Poison the journal the way a crash mid-append would: tear the
    # final record in half.
    text = journal_path.read_text()
    lines = text.splitlines(keepends=True)
    journal_path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])

    journal = SweepJournal(journal_path)
    rows = journal.load()
    assert journal.corrupt_lines == 1
    assert len(rows) == len(SCHEMES) - 1

    resumed = SweepEngine(
        requests_per_core=REQUESTS, workers=1, cache=False,
        journal=journal_path,
    ).run(SCHEMES, WORKLOADS[:1], resume=True)
    assert resumed.stats.resumed == len(SCHEMES) - 1
    assert resumed.stats.executed == 1       # only the torn cell re-ran
    assert resumed.stats.errors == 0
    clean = SweepEngine(requests_per_core=REQUESTS, workers=1, cache=False)
    assert row_bytes(resumed.rows) == row_bytes(
        clean.run(SCHEMES, WORKLOADS[:1]).rows
    )


# ----------------------------------------------------------------------
# Journal mechanics.
# ----------------------------------------------------------------------
def test_journal_roundtrip_dedup_and_compact(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl", fsync=False)
    assert journal.append("k1", {"a": 1})
    assert journal.append("k2", {"b": 2}, meta={"scheme": "tetris"})
    assert not journal.append("k1", {"a": 999})   # duplicate: skipped
    assert journal.skipped_duplicates == 1
    assert len(journal) == 2 and "k1" in journal

    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"torn...\n')
        fh.write("not json at all\n")
    fresh = SweepJournal(journal.path)
    rows = fresh.load()
    assert rows == {"k1": {"a": 1}, "k2": {"b": 2}}
    assert fresh.corrupt_lines == 2

    dropped = fresh.compact()
    assert dropped == 2
    assert SweepJournal(journal.path).load() == rows
    assert SweepJournal(journal.path).corrupt_lines == 0


def test_journal_load_on_missing_file_is_empty(tmp_path):
    journal = SweepJournal(tmp_path / "nope" / "j.jsonl")
    assert journal.load() == {}
    assert journal.corrupt_lines == 0


# ----------------------------------------------------------------------
# Cache integrity: quarantine + verify + gc.
# ----------------------------------------------------------------------
def test_corrupt_entry_is_quarantined_and_verify_reports_it(tmp_path):
    cache = ResultCache(tmp_path)
    key = cache.cell_key(config_json="{}", trace_key="t", scheme="s")
    cache.put(key, {"x": 1}, meta={"salt": cache.salt})
    assert cache.get(key) == {"x": 1}

    # Flip a payload byte without updating the digest: bit rot.
    path = cache._path(key)
    entry = json.loads(path.read_text())
    entry["row"]["x"] = 2
    path.write_text(json.dumps(entry))

    assert cache.get(key) is None
    assert cache.stats.corrupt == 1
    assert not path.exists()                     # moved, not left rotting
    assert len(cache.quarantined()) == 1

    report = cache.verify()
    assert report == {
        "root": str(tmp_path), "checked": 0, "ok": 0, "corrupt": 0,
        "stale_salt": 0, "quarantined": 1,
    }
    gc = cache.gc()
    assert gc["removed_quarantined"] == 1
    assert cache.quarantined() == []


def test_verify_quarantines_torn_and_stale_entries(tmp_path):
    cache = ResultCache(tmp_path)
    k_ok = cache.cell_key(config_json="{}", trace_key="ok", scheme="s")
    cache.put(k_ok, {"x": 1}, meta={"salt": cache.salt})
    k_stale = cache.cell_key(config_json="{}", trace_key="stale", scheme="s")
    cache.put(k_stale, {"y": 2}, meta={"salt": "other-code-version"})
    k_torn = cache.cell_key(config_json="{}", trace_key="torn", scheme="s")
    cache.put(k_torn, {"z": 3}, meta={"salt": cache.salt})
    torn_path = cache._path(k_torn)
    torn_path.write_text(torn_path.read_text()[: 20])

    report = cache.verify()
    assert (report["checked"], report["ok"]) == (3, 2)
    assert report["corrupt"] == 1
    assert report["stale_salt"] == 1

    gc = cache.gc()
    assert gc["removed_stale"] == 1
    assert gc["removed_quarantined"] == 1
    assert cache.get(k_ok) == {"x": 1}           # the good entry survives


def test_cache_get_missing_entry_is_plain_miss_not_corrupt(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("0" * 64) is None
    assert cache.stats.misses == 1
    assert cache.stats.corrupt == 0


# ----------------------------------------------------------------------
# parallel_map regressions.
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def test_parallel_map_empty_input_returns_empty_list():
    assert parallel_map(_square, [], workers=4) == []


def test_parallel_map_worker_death_raises_worker_task_error(tmp_path):
    # os.getpid is picklable and SIGKILLing via a task fn needs a real
    # function; reuse the engine's kill gate through a sweep-free map.
    flag = tmp_path / "kill"
    flag.touch()
    env_key = "REPRO_CHAOS_KILL_ONCE"
    old = os.environ.get(env_key)
    os.environ[env_key] = f"{flag}:w:s"
    try:
        with pytest.raises(WorkerTaskError, match="worker died"):
            parallel_map(_chaos_map_item, [1, 2], workers=2)
    finally:
        if old is None:
            os.environ.pop(env_key, None)
        else:
            os.environ[env_key] = old


def _chaos_map_item(x):
    from repro.parallel.engine import _chaos_inject

    _chaos_inject("w", "s")
    return x
