"""Tests for the process-variation model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import default_config
from repro.experiments.fullsystem import precompute_write_service, run_fullsystem
from repro.pcm.variation import ProcessVariation
from repro.trace.synthetic import generate_trace


class TestProcessVariation:
    def test_zero_sigma_is_identity(self):
        pv = ProcessVariation(sigma=0.0)
        assert pv.factor_of(12345) == 1.0
        service = np.array([100.0, 200.0])
        assert np.array_equal(pv.apply(service, np.array([1, 2])), service)

    def test_deterministic_per_region(self):
        pv = ProcessVariation(sigma=0.2, region_lines=64)
        assert pv.factor_of(0) == pv.factor_of(63)     # same region
        assert pv.factor_of(0) != pv.factor_of(64)     # next region

    def test_factors_positive(self):
        pv = ProcessVariation(sigma=0.3)
        factors = pv.factors_of(np.arange(0, 100_000, 997))
        assert (factors > 0).all()

    def test_unit_mean(self):
        pv = ProcessVariation(sigma=0.2, region_lines=1)
        factors = pv.factors_of(np.arange(20000))
        assert factors.mean() == pytest.approx(1.0, rel=0.02)

    def test_vectorized_matches_scalar(self):
        pv = ProcessVariation(sigma=0.25, region_lines=128)
        lines = np.array([0, 100, 500, 5000])
        vec = pv.factors_of(lines)
        scalar = [pv.factor_of(int(l)) for l in lines]
        assert np.allclose(vec, scalar)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessVariation(sigma=-0.1)
        with pytest.raises(ValueError):
            ProcessVariation(region_lines=0)
        with pytest.raises(ValueError):
            ProcessVariation().apply(np.zeros(2), np.zeros(3))

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.01, max_value=0.5))
    def test_spread_grows_with_sigma(self, sigma):
        pv = ProcessVariation(sigma=sigma, region_lines=1)
        factors = pv.factors_of(np.arange(2000))
        assert factors.std() > 0


class TestVariationInPrecompute:
    def test_service_scaled_by_region_factor(self):
        trace = generate_trace("dedup", requests_per_core=200, seed=3)
        base = precompute_write_service(trace, "tetris")
        varied = precompute_write_service(
            trace, "tetris", variation=ProcessVariation(sigma=0.2)
        )
        assert varied.service_ns.shape == base.service_ns.shape
        ratio = varied.service_ns / base.service_ns
        assert ratio.std() > 0                      # spread introduced
        assert ratio.mean() == pytest.approx(1.0, rel=0.15)

    def test_ranking_survives_variation(self):
        """Variation scales every scheme alike per line: Tetris still wins."""
        trace = generate_trace("ferret", requests_per_core=300, seed=3)
        pv = ProcessVariation(sigma=0.25)
        results = {}
        for scheme in ("dcw", "tetris"):
            table = precompute_write_service(trace, scheme, variation=pv)
            results[scheme] = run_fullsystem(trace, scheme, table=table)
        assert (
            results["tetris"].mean_read_latency_ns
            < results["dcw"].mean_read_latency_ns
        )
        assert results["tetris"].runtime_ns < results["dcw"].runtime_ns
