"""Stateful (model-based) testing of the memory controller.

Hypothesis drives random interleavings of submissions and time steps
against a shadow model; after every step the controller must satisfy its
structural invariants, and at teardown every accepted request must have
completed exactly once.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.config import MemCtrlConfig, default_config
from repro.memctrl.controller import MemoryController
from repro.memctrl.request import MemRequest, ReqKind
from repro.sim.engine import Simulator


class FlatService:
    def read_ns(self, req):
        return 50.0

    def write_ns(self, req):
        return 700.0


class ControllerMachine(RuleBasedStateMachine):
    @initialize(
        pausing=st.booleans(),
        coalescing=st.booleans(),
        opportunistic=st.booleans(),
        subarrays=st.sampled_from([1, 4]),
    )
    def setup(self, pausing, coalescing, opportunistic, subarrays):
        from repro.config import PCMOrganization

        cfg = default_config().replace(
            memctrl=MemCtrlConfig(
                read_queue_entries=8,
                write_queue_entries=8,
                drain_high_watermark=6,
                drain_low_watermark=2,
                write_pausing=pausing,
                write_coalescing=coalescing,
                opportunistic_drain=opportunistic,
            ),
            organization=PCMOrganization(subarrays_per_bank=subarrays),
        )
        self.sim = Simulator()
        self.ctrl = MemoryController(
            self.sim, cfg, FlatService(), enable_forwarding=True
        )
        self.seq = 0
        self.accepted = 0
        self.done = []

    # ------------------------------------------------------------------
    @rule(line=st.integers(min_value=0, max_value=31), is_write=st.booleans())
    def submit(self, line, is_write):
        self.seq += 1
        req = MemRequest(
            req_id=self.seq,
            kind=ReqKind.WRITE if is_write else ReqKind.READ,
            core=0,
            line=line,
            bank=line % 8,
            write_idx=0 if is_write else -1,
            on_done=lambda r: self.done.append(r.req_id),
        )
        if self.ctrl.submit(req):
            self.accepted += 1

    @rule(steps=st.integers(min_value=1, max_value=30))
    def advance(self, steps):
        for _ in range(steps):
            if not self.sim.step():
                break

    @rule()
    def flush(self):
        self.ctrl.flush_writes()

    # ------------------------------------------------------------------
    @invariant()
    def queues_within_capacity(self):
        assert self.ctrl.read_queue.occupancy() <= 8
        assert self.ctrl.write_queue.occupancy() <= 8

    @invariant()
    def completions_unique(self):
        assert len(self.done) == len(set(self.done))

    @invariant()
    def completions_bounded_by_accepted(self):
        assert self.ctrl.stats.completed <= self.accepted

    @invariant()
    def paused_banks_not_busy(self):
        for bank in range(self.ctrl.num_banks):
            if self.ctrl._paused[bank] is not None:
                assert not self.ctrl.bank_busy[bank]

    def teardown(self):
        # Drain everything: every accepted request completes exactly once.
        self.ctrl.flush_writes()
        self.sim.run()
        assert self.ctrl.idle
        assert self.ctrl.stats.completed == self.accepted
        assert len(self.done) == self.accepted


ControllerMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestControllerStateful = ControllerMachine.TestCase
