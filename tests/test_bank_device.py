"""Tests for PCMBank (incl. cell-level verification) and PCMDevice."""

import numpy as np
import pytest

from repro.config import default_config
from repro.pcm.bank import PCMBank
from repro.pcm.device import AddressMap, PCMDevice
from repro.schemes import get_scheme


@pytest.fixture
def bank(config):
    return PCMBank(0, get_scheme("tetris", config), config)


@pytest.fixture
def verified_bank(config):
    return PCMBank(0, get_scheme("tetris", config), config, verify_cells=True)


class TestBank:
    def test_read_returns_initial_content(self, bank):
        data, t = bank.read(42)
        assert t == 50.0
        assert np.array_equal(data, bank.image.read_logical(42))

    def test_write_then_read_roundtrip(self, bank, line8):
        bank.write(7, line8)
        data, _ = bank.read(7)
        assert np.array_equal(data, line8)

    def test_stats_accumulate(self, bank, line8):
        bank.write(1, line8)
        bank.write(2, line8)
        bank.read(1)
        assert bank.stats.writes == 2
        assert bank.stats.reads == 1
        assert bank.stats.busy_ns > 0
        assert bank.stats.mean_write_units() > 0

    def test_cell_level_verification_passes(self, verified_bank, rng):
        """Tetris writes replayed on the functional chips must converge
        to the committed image without tripping the GCP budget."""
        for i in range(10):
            line = int(rng.integers(0, 100))
            old = verified_bank.image.read_logical(line)
            new = old ^ rng.integers(0, 1 << 10, size=8, dtype=np.uint64)
            verified_bank.write(line, new)
            got, _ = verified_bank.read(line)
            assert np.array_equal(got, new)

    def test_verification_with_non_tetris_scheme(self, config, line8):
        bank = PCMBank(0, get_scheme("dcw", config), config, verify_cells=True)
        bank.write(3, line8)
        got, _ = bank.read(3)
        assert np.array_equal(got, line8)


class TestAddressMap:
    def test_line_interleaves_across_banks(self):
        amap = AddressMap(num_banks=8)
        banks = [amap.bank_of_line(i) for i in range(16)]
        assert banks == list(range(8)) * 2

    def test_decode_fields(self):
        amap = AddressMap(line_bytes=64, num_banks=8)
        rank, bank, row, line = amap.decode(64 * 13)
        assert line == 13
        assert bank == 5
        assert rank == 0

    def test_rejects_bad_row_size(self):
        with pytest.raises(ValueError):
            AddressMap(line_bytes=64, row_size_bytes=100)

    def test_capacity_wraps(self):
        amap = AddressMap(capacity_bytes=1 << 20)
        assert amap.decode((1 << 20) + 64)[3] == 1


class TestDevice:
    def test_bank_count_matches_config(self, config):
        dev = PCMDevice(lambda cfg: get_scheme("dcw", cfg), config)
        assert len(dev.banks) == 8

    def test_requests_route_by_line(self, config, line8):
        dev = PCMDevice(lambda cfg: get_scheme("dcw", cfg), config)
        dev.write(9, line8)   # line 9 -> bank 1
        assert dev.banks[1].stats.writes == 1
        assert dev.banks[0].stats.writes == 0

    def test_total_stats(self, config, line8):
        dev = PCMDevice(lambda cfg: get_scheme("tetris", cfg), config)
        for line in range(16):
            dev.write(line, line8)
        stats = dev.total_stats()
        assert stats["writes"] == 16
        assert stats["mean_write_units"] > 0
        assert stats["energy"] > 0

    def test_per_bank_scheme_instances(self, config):
        dev = PCMDevice(lambda cfg: get_scheme("tetris", cfg), config)
        assert dev.banks[0].scheme is not dev.banks[1].scheme
