"""Unit tests for repro.config — Table II constants and derived values."""

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    ConfigError,
    MemCtrlConfig,
    PCMOrganization,
    PCMPower,
    PCMTimings,
    SystemConfig,
    default_config,
    mobile_config,
    theoretical_write_units,
)


class TestPCMTimings:
    def test_paper_values(self):
        t = PCMTimings()
        assert t.t_read_ns == pytest.approx(50.0)
        assert t.t_reset_ns == pytest.approx(53.0)
        assert t.t_set_ns == pytest.approx(430.0)

    def test_time_asymmetry_is_8(self):
        assert PCMTimings().time_asymmetry == 8

    def test_sub_write_unit_duration(self):
        t = PCMTimings()
        assert t.t_sub_ns == pytest.approx(430.0 / 8)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            PCMTimings(t_read_ns=0.0)

    def test_rejects_set_faster_than_reset(self):
        with pytest.raises(ConfigError):
            PCMTimings(t_set_ns=10.0, t_reset_ns=53.0)

    def test_asymmetry_floor_is_one(self):
        t = PCMTimings(t_set_ns=60.0, t_reset_ns=53.0)
        assert t.time_asymmetry == 1


class TestPCMPower:
    def test_paper_ratio(self):
        assert PCMPower().L == 2.0

    def test_baseline_pump_power(self):
        # §IV.D: 5 V x 25 mA = 125 mW.
        assert PCMPower().baseline_write_power_mw == pytest.approx(125.0)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigError):
            PCMPower(reset_set_current_ratio=0.0)

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigError):
            PCMPower(power_budget_per_chip=-1.0)


class TestPCMOrganization:
    def test_bank_write_unit_is_8_bytes(self):
        assert PCMOrganization().write_unit_bytes_per_bank == 8

    def test_bank_width(self):
        assert PCMOrganization().bank_data_width_bits == 64

    def test_rejects_write_unit_wider_than_io(self):
        with pytest.raises(ConfigError):
            PCMOrganization(chip_io_bits=8, write_unit_bits_per_chip=16)

    def test_rejects_odd_io_width(self):
        with pytest.raises(ConfigError):
            PCMOrganization(chip_io_bits=13)


class TestCacheConfig:
    def test_num_sets(self):
        c = CacheConfig("L2", 2 << 20, 8, 20)
        assert c.num_sets == (2 << 20) // (8 * 64)

    def test_rejects_non_divisible(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1000, 3, 1)


class TestMemCtrlConfig:
    def test_default_watermarks_valid(self):
        mc = MemCtrlConfig()
        assert mc.drain_low_watermark < mc.drain_high_watermark

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ConfigError):
            MemCtrlConfig(drain_high_watermark=5, drain_low_watermark=10)

    def test_rejects_watermark_above_capacity(self):
        with pytest.raises(ConfigError):
            MemCtrlConfig(write_queue_entries=16, drain_high_watermark=20)


class TestSystemConfig:
    def test_units_per_line_is_8(self, config):
        assert config.units_per_line == 8

    def test_data_units_per_line(self, config):
        assert config.data_units_per_line == 8

    def test_K_and_L(self, config):
        assert config.K == 8
        assert config.L == 2.0

    def test_bank_budget_gcp(self, config):
        # 4 chips x 32 SET units pooled by the GCP.
        assert config.bank_power_budget == 128.0

    def test_analysis_overhead_matches_paper(self, config):
        # 41 cycles at 400 MHz (§IV.D).
        assert config.analysis_overhead_ns == pytest.approx(102.5)

    def test_replace_returns_new_config(self, config):
        other = config.replace(seed=1)
        assert other.seed == 1
        assert config.seed != 1

    def test_frozen(self, config):
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.seed = 5

    def test_rejects_line_not_multiple_of_write_unit(self):
        with pytest.raises(ConfigError):
            SystemConfig(cache_line_bytes=60)

    def test_rejects_wide_data_unit(self):
        with pytest.raises(ConfigError):
            SystemConfig(data_unit_bits=128)

    def test_chip_slices_per_unit(self, config):
        assert config.chip_slices_per_unit == 4


class TestMobileConfig:
    @pytest.mark.parametrize("width,budget", [(2, 4.0), (4, 8.0), (8, 16.0)])
    def test_budget_scales_with_width(self, width, budget):
        cfg = mobile_config(width)
        assert cfg.power.power_budget_per_chip == budget
        assert cfg.organization.write_unit_bits_per_chip == width

    def test_units_per_line_grows(self):
        # 4-bit write units: bank write unit = 2 B -> 32 units per line.
        assert mobile_config(4).units_per_line == 32

    def test_rejects_desktop_width(self):
        with pytest.raises(ConfigError):
            mobile_config(16)


class TestTheoreticalWriteUnits:
    def test_paper_figure10_constants(self, config):
        t = theoretical_write_units(config)
        assert t["conventional"] == 8.0
        assert t["dcw"] == 8.0
        assert t["flip_n_write"] == 4.0
        assert t["two_stage"] == pytest.approx(3.0)
        assert t["three_stage"] == pytest.approx(2.5)

    def test_scales_with_line_size(self, config):
        # 128 B lines (IBM POWER7, §I) double every count.
        big = config.replace(cache_line_bytes=128)
        t = theoretical_write_units(big)
        assert t["conventional"] == 16.0
        assert t["three_stage"] == pytest.approx(5.0)
