"""Tests for the trace-driven cores and the CMP system wrapper."""

import numpy as np
import pytest

from repro.config import MemCtrlConfig, default_config
from repro.cpu.system import CMPSystem
from repro.experiments.fullsystem import PrecomputedServiceModel, precompute_write_service
from repro.trace.record import OP_READ, OP_WRITE, RECORD_DTYPE, Trace


def make_trace(rows, counts=None, units=8, workload="test"):
    """rows: list of (core, op, gap, line)."""
    records = np.array(rows, dtype=RECORD_DTYPE)
    n_writes = int((records["op"] == OP_WRITE).sum())
    if counts is None:
        counts = np.full((n_writes, units, 2), 2, dtype=np.uint8)
    return Trace(
        workload=workload, seed=1, records=records, write_counts=counts,
        units_per_line=units,
    )


def run_trace(trace, scheme="dcw", config=None):
    cfg = config if config is not None else default_config()
    table = precompute_write_service(trace, scheme, cfg)
    service = PrecomputedServiceModel(table, cfg)
    return CMPSystem(trace, cfg, service, scheme_name=scheme).run()


class TestSingleCore:
    def test_read_only_trace(self):
        trace = make_trace([(0, OP_READ, 1000, 0), (0, OP_READ, 1000, 1)])
        res = run_trace(trace)
        # 2 x (1000 cycles @ 0.5 ns + 50 ns read).
        assert res.runtime_ns == pytest.approx(2 * (500 + 50))
        assert res.total_instructions == 2000
        assert res.controller.read_latency.count == 2

    def test_ipc_definition(self):
        trace = make_trace([(0, OP_READ, 1000, 0)])
        res = run_trace(trace)
        # 1000 instructions over (500 + 50) ns at 2 GHz.
        assert res.ipc == pytest.approx(1000 / (550 / 0.5))

    def test_posted_write_does_not_block(self):
        trace = make_trace([(0, OP_WRITE, 1000, 0), (0, OP_READ, 1000, 1)])
        res = run_trace(trace)
        # The write is posted; core continues immediately; read on bank 1
        # is not behind the (undrained) write on bank 0.
        core_finish = res.cores[0].finish_ns
        assert core_finish == pytest.approx(500 + 500 + 50)
        # Runtime includes the end-of-run flush of the write queue.
        assert res.runtime_ns == pytest.approx(core_finish)

    def test_empty_core_slices_finish(self):
        # Only core 0 has records; cores 1-3 must still "finish".
        trace = make_trace([(0, OP_READ, 10, 0)])
        res = run_trace(trace)
        assert all(c.finish_ns >= 0 for c in res.cores)


class TestBackpressure:
    def test_core_stalls_on_full_write_queue(self):
        cfg = default_config().replace(
            memctrl=MemCtrlConfig(
                write_queue_entries=2,
                drain_high_watermark=2,
                drain_low_watermark=0,
                opportunistic_drain=False,
            )
        )
        # Four rapid writes to the same bank: the first drains into the
        # (now busy) bank, the next two fill the 2-entry queue, and the
        # fourth must stall until the bank completes a service.
        rows = [(0, OP_WRITE, 10, 0), (0, OP_WRITE, 10, 8),
                (0, OP_WRITE, 10, 16), (0, OP_WRITE, 10, 24)]
        res = run_trace(make_trace(rows), config=cfg)
        assert res.cores[0].write_slot_stall_ns > 0

    def test_read_block_time_accounted(self):
        trace = make_trace([(0, OP_READ, 1000, 0)])
        res = run_trace(trace)
        assert res.cores[0].read_block_ns == pytest.approx(50.0)


class TestMultiCore:
    def test_cores_run_concurrently(self):
        rows = [(c, OP_READ, 1000, c) for c in range(4)]
        res = run_trace(make_trace(rows))
        # All four cores hit different banks: same finish time as one core.
        assert res.runtime_ns == pytest.approx(550.0)
        assert res.total_instructions == 4000

    def test_bank_contention_serializes(self):
        rows = [(c, OP_READ, 1000, 0) for c in range(4)]  # all bank 0
        res = run_trace(make_trace(rows))
        assert res.runtime_ns == pytest.approx(500 + 4 * 50)

    def test_per_core_ipc_reported(self):
        rows = [(c, OP_READ, 1000, c) for c in range(2)]
        res = run_trace(make_trace(rows))
        assert len(res.per_core_ipc) == 4


class TestSchemeImpact:
    def test_faster_scheme_shorter_runtime(self):
        rows = []
        for i in range(40):
            rows.append((0, OP_WRITE, 50, i % 8))
            rows.append((0, OP_READ, 50, 8 + i % 8))
        trace = make_trace(rows)
        slow = run_trace(trace, "dcw")
        fast = run_trace(trace, "tetris")
        assert fast.runtime_ns < slow.runtime_ns
        assert fast.mean_read_latency_ns <= slow.mean_read_latency_ns

    def test_all_requests_complete(self):
        rows = [(c, OP_WRITE if i % 3 else OP_READ, 20, (i * 7 + c) % 64)
                for c in range(4) for i in range(30)]
        trace = make_trace(rows)
        res = run_trace(trace, "tetris")
        total = (
            res.controller.read_latency.count
            + res.controller.write_latency.count
        )
        assert total == len(trace)
