"""Tests for the bounded controller queues."""

import pytest

from repro.memctrl.queues import BoundedQueue
from repro.memctrl.request import MemRequest, ReqKind


def req(i, line=0, bank=0, kind=ReqKind.READ):
    return MemRequest(req_id=i, kind=kind, core=0, line=line, bank=bank)


class TestCapacity:
    def test_push_until_full(self):
        q = BoundedQueue(2)
        assert q.push(req(1))
        assert q.push(req(2))
        assert q.full
        assert not q.push(req(3))
        assert len(q) == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_occupancy(self):
        q = BoundedQueue(4)
        q.push(req(1))
        assert q.occupancy() == 1
        assert not q.empty


class TestSelection:
    def test_oldest_for_bank(self):
        q = BoundedQueue(8)
        q.push(req(1, bank=1))
        q.push(req(2, bank=0))
        q.push(req(3, bank=1))
        oldest = q.oldest_for_bank(1)
        assert oldest.req_id == 1

    def test_oldest_for_missing_bank(self):
        q = BoundedQueue(8)
        q.push(req(1, bank=0))
        assert q.oldest_for_bank(5) is None

    def test_oldest_where(self):
        q = BoundedQueue(8)
        q.push(req(1, line=10))
        q.push(req(2, line=20))
        assert q.oldest_where(lambda r: r.line == 20).req_id == 2


class TestRemovalAndLines:
    def test_remove_frees_slot(self):
        q = BoundedQueue(1)
        r = req(1)
        q.push(r)
        q.remove(r)
        assert q.empty
        assert q.push(req(2))

    def test_contains_line_multiset(self):
        q = BoundedQueue(8)
        a, b = req(1, line=5), req(2, line=5)
        q.push(a)
        q.push(b)
        q.remove(a)
        assert q.contains_line(5)       # second request still pending
        q.remove(b)
        assert not q.contains_line(5)

    def test_banks_pending(self):
        q = BoundedQueue(8)
        q.push(req(1, bank=2))
        q.push(req(2, bank=4))
        assert q.banks_pending() == {2, 4}

    def test_iteration_order_is_fifo(self):
        q = BoundedQueue(8)
        for i in range(3):
            q.push(req(i))
        assert [r.req_id for r in q] == [0, 1, 2]
