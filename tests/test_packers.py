"""Tests for the alternative packers and the FFD optimality gap."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packers import (
    best_fit_decreasing_bins,
    ffd_bins,
    optimal_bins,
    worst_fit_decreasing_bins,
)

demands8 = st.lists(st.integers(min_value=0, max_value=32), min_size=1, max_size=8)
ALL_PACKERS = (ffd_bins, best_fit_decreasing_bins, worst_fit_decreasing_bins)


def brute_force_bins(items, budget):
    """Ground truth by trying every assignment of items to bins."""
    items = [d for d in items if d > 0]
    if not items:
        return 0
    n = len(items)
    for k in range(1, n + 1):
        for assign in itertools.product(range(k), repeat=n):
            if len(set(assign)) != k:
                continue
            loads = [0.0] * k
            for item, b in zip(items, assign):
                loads[b] += item
            if max(loads) <= budget:
                return k
    return n


class TestBasics:
    @pytest.mark.parametrize("packer", ALL_PACKERS + (optimal_bins,))
    def test_empty_is_zero(self, packer):
        assert packer([0, 0, 0], 32.0) == 0

    @pytest.mark.parametrize("packer", ALL_PACKERS + (optimal_bins,))
    def test_single_item(self, packer):
        assert packer([5], 32.0) == 1

    @pytest.mark.parametrize("packer", ALL_PACKERS + (optimal_bins,))
    def test_oversized_raises(self, packer):
        with pytest.raises(ValueError):
            packer([40], 32.0)

    def test_optimal_rejects_large_inputs(self):
        with pytest.raises(ValueError):
            optimal_bins([1] * 17, 32.0)


class TestKnownInstances:
    def test_ffd_exact_fit(self):
        assert ffd_bins([16, 16, 16, 16], 32.0) == 2

    def test_bfd_beats_ffd_classic_instance(self):
        """A classic case where tighter placement matters: FFD and BFD
        agree here, but both must match optimal."""
        items, budget = [15, 10, 10, 7, 7, 7, 5, 5], 33.0
        assert optimal_bins(items, budget) <= ffd_bins(items, budget)

    def test_fig4_write1s_need_two_bins(self):
        items = [8, 7, 7, 6, 6, 6, 5, 3]
        assert ffd_bins(items, 32.0) == 2
        assert optimal_bins(items, 32.0) == 2


class TestOptimality:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=16), min_size=1, max_size=6))
    def test_optimal_matches_brute_force(self, items):
        assert optimal_bins(items, 16.0) == brute_force_bins(items, 16.0)

    @settings(max_examples=150, deadline=None)
    @given(demands8)
    def test_heuristics_never_beat_optimal(self, items):
        opt = optimal_bins(items, 32.0)
        for packer in ALL_PACKERS:
            assert packer(items, 32.0) >= opt

    @settings(max_examples=150, deadline=None)
    @given(demands8)
    def test_ffd_within_theory_bound(self, items):
        """FFD <= 11/9 OPT + 1 (classic Johnson bound, relaxed)."""
        opt = optimal_bins(items, 32.0)
        assert ffd_bins(items, 32.0) <= np.ceil(11 / 9 * opt) + 1

    @settings(max_examples=100, deadline=None)
    @given(demands8)
    def test_ffd_matches_scheduler_result(self, items):
        """The standalone FFD agrees with Algorithm 2's write-1 pass."""
        from repro.core.analysis import analyze

        sched = analyze(items, [0] * len(items), power_budget=32.0)
        assert sched.result == ffd_bins(items, 32.0)


class TestPaperRegime:
    def test_ffd_nearly_always_optimal_on_workload_demands(self):
        """At the paper's operating point (budget 128, ~6.7 SETs/unit),
        FFD equals optimal on essentially every write."""
        rng = np.random.default_rng(0)
        gap = 0
        for _ in range(300):
            items = rng.poisson(6.7, size=8)
            gap += ffd_bins(items, 128.0) - optimal_bins(items, 128.0)
        assert gap == 0
