"""Tests for the set-associative cache and the 3-level hierarchy."""

import numpy as np
import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.setassoc import SetAssocCache
from repro.config import CacheConfig, default_config


def small_cache(sets=4, ways=2):
    return SetAssocCache(CacheConfig("t", sets * ways * 64, ways, 1))


class TestSetAssocCache:
    def test_miss_then_hit(self):
        c = small_cache()
        assert not c.access(0, False).hit
        assert c.access(0, False).hit
        assert c.hits == 1 and c.misses == 1

    def test_set_mapping(self):
        c = small_cache(sets=4)
        c.access(0, False)
        c.access(4, False)  # same set, second way
        assert c.access(0, False).hit
        assert c.access(4, False).hit

    def test_lru_eviction(self):
        c = small_cache(sets=1, ways=2)
        c.access(0, False)
        c.access(1, False)
        c.access(0, False)        # 0 is now MRU
        res = c.access(2, False)  # evicts 1 (LRU)
        assert res.victim_line == 1
        assert c.access(0, False).hit
        assert not c.access(1, False).hit

    def test_dirty_victim_flag(self):
        c = small_cache(sets=1, ways=1)
        c.access(0, True)
        res = c.access(1, False)
        assert res.victim_line == 0 and res.victim_dirty

    def test_clean_victim_flag(self):
        c = small_cache(sets=1, ways=1)
        c.access(0, False)
        res = c.access(1, False)
        assert res.victim_line == 0 and not res.victim_dirty

    def test_write_hit_sets_dirty(self):
        c = small_cache(sets=1, ways=1)
        c.access(0, False)
        c.access(0, True)
        assert c.access(1, False).victim_dirty

    def test_invalidate(self):
        c = small_cache()
        c.access(0, True)
        assert c.invalidate(0) is True      # was dirty
        assert not c.access(0, False).hit   # gone
        assert c.invalidate(99) is False

    def test_mark_dirty(self):
        c = small_cache()
        c.access(0, False)
        assert c.mark_dirty(0)
        assert not c.mark_dirty(1)

    def test_probe_does_not_touch_lru(self):
        c = small_cache(sets=1, ways=2)
        c.access(0, False)
        c.access(1, False)
        c.probe(0)                 # must NOT refresh 0
        res = c.access(2, False)
        assert res.victim_line == 0

    def test_hit_rate_and_residency(self):
        c = small_cache()
        for i in range(8):
            c.access(i, False)
        assert c.resident_lines() == 8
        assert c.hit_rate() == 0.0


class TestHierarchy:
    @pytest.fixture
    def hier(self, config):
        return CacheHierarchy(config)

    def test_first_access_goes_to_memory(self, hier):
        res = hier.access(0, False)
        assert res.memory_read
        assert res.hit_level == "MEM"
        assert res.latency_cycles == 2 + 20 + 50

    def test_l1_hit_after_fill(self, hier):
        hier.access(0, False)
        res = hier.access(0, False)
        assert res.hit_level == "L1"
        assert res.latency_cycles == 2

    def test_l2_hit_after_l1_eviction(self, hier, config):
        hier.access(0, False)
        # Evict line 0 from L1 by filling its set (L1: 256 sets, 2 ways).
        l1_sets = hier.l1.num_sets
        hier.access(l1_sets, False)
        hier.access(2 * l1_sets, False)
        res = hier.access(0, False)
        assert res.hit_level in ("L2", "L3")

    def test_dirty_llc_eviction_writes_memory(self, config):
        tiny = config.replace(
            caches=(
                CacheConfig("L1I", 128, 1, 2),
                CacheConfig("L1D", 128, 1, 2),
                CacheConfig("L2", 256, 1, 20),
                CacheConfig("L3", 512, 1, 50),
            )
        )
        hier = CacheHierarchy(tiny)
        hier.access(0, True)
        # Push line 0 down and out of the tiny hierarchy.
        for i in range(1, 40):
            hier.access(i * 8, True)
        assert hier.memory_writes > 0

    def test_writeback_preserved_not_lost(self, config):
        """A dirty line pushed L1 -> L2 -> L3 must surface as a memory
        write when it finally leaves the LLC (no silent data loss)."""
        tiny = config.replace(
            caches=(
                CacheConfig("L1I", 128, 1, 2),
                CacheConfig("L1D", 128, 1, 2),
                CacheConfig("L2", 256, 1, 20),
                CacheConfig("L3", 512, 1, 50),
            )
        )
        hier = CacheHierarchy(tiny)
        hier.access(0, True)                   # dirty in L1
        for i in range(1, 200):
            hier.access(i, False)              # churn everything
        drained = hier.flush_dirty_llc()
        total_writes = hier.memory_writes
        # Line 0's dirty data left through *some* path.
        assert total_writes >= 1

    def test_flush_dirty_llc(self, hier):
        hier.access(0, True)
        hier.access(1, True)
        drained = hier.flush_dirty_llc()
        # The lines are dirty in L1, not yet in L3 -> flush covers L3 only.
        assert isinstance(drained, list)

    def test_stats_shape(self, hier):
        hier.access(0, False)
        s = hier.stats()
        assert set(s) == {
            "l1_hit_rate", "l2_hit_rate", "l3_hit_rate",
            "memory_reads", "memory_writes",
        }

    def test_memory_read_rate_drops_with_locality(self, hier):
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 64, size=2000)  # tiny working set
        for ln in lines:
            hier.access(int(ln), False)
        assert hier.memory_reads <= 64
