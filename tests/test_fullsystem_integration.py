"""Full-system integration: functional vs. precomputed paths, end-to-end."""

import numpy as np
import pytest

from repro.config import default_config
from repro.experiments.fullsystem import (
    FunctionalServiceModel,
    PrecomputedServiceModel,
    precompute_write_service,
    run_fullsystem,
)
from repro.trace.synthetic import generate_trace


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace("bodytrack", requests_per_core=120, seed=17)


class TestFunctionalEquivalence:
    """The fast precomputed path must match the slow functional path.

    The functional model realizes actual payloads and runs the real
    scheme objects on a live PCM device; the precomputed path prices the
    same writes from the trace's count tables.  Tiny differences can
    come only from payload realization truncation (exhausted polarity),
    which the chosen trace sizes avoid.
    """

    @pytest.mark.parametrize("scheme", ["dcw", "flip_n_write", "three_stage"])
    def test_constant_schemes_identical(self, small_trace, scheme):
        fast = run_fullsystem(small_trace, scheme)
        slow = run_fullsystem(small_trace, scheme, functional=True)
        assert fast.runtime_ns == pytest.approx(slow.runtime_ns, rel=1e-9)
        assert fast.mean_read_latency_ns == pytest.approx(
            slow.mean_read_latency_ns, rel=1e-9
        )

    def test_tetris_service_times_match(self, small_trace):
        cfg = default_config()
        table = precompute_write_service(small_trace, "tetris", cfg)
        functional = FunctionalServiceModel(small_trace, "tetris", cfg)
        fast = run_fullsystem(small_trace, "tetris", cfg, table=table)
        slow_res = run_fullsystem(small_trace, "tetris", cfg, functional=True)
        assert fast.runtime_ns == pytest.approx(slow_res.runtime_ns, rel=0.02)
        assert fast.mean_write_latency_ns == pytest.approx(
            slow_res.mean_write_latency_ns, rel=0.02
        )

    def test_functional_with_cell_verification(self):
        """End-to-end with the chips replaying every Tetris schedule."""
        trace = generate_trace("swaptions", requests_per_core=60, seed=5)
        cfg = default_config()
        service = FunctionalServiceModel(trace, "tetris", cfg, verify_cells=True)
        res = run_fullsystem(trace, "tetris", cfg, functional=False)
        # Drive the functional model manually over all writes in order.
        from repro.memctrl.request import MemRequest, ReqKind

        lines = trace.records["line"][trace.records["op"] == 1]
        for w in range(trace.n_writes):
            req = MemRequest(
                req_id=w, kind=ReqKind.WRITE, core=0,
                line=int(lines[w]), bank=int(lines[w]) % 8, write_idx=w,
            )
            service.write_ns(req)  # raises if any chip replay diverges
        assert len(service.outcomes) == trace.n_writes


class TestRunDeterminism:
    def test_same_seed_same_result(self, small_trace):
        a = run_fullsystem(small_trace, "tetris")
        b = run_fullsystem(small_trace, "tetris")
        # Bitwise reproducibility is the property under test: the two
        # runs must agree exactly, not within tolerance.
        assert a.runtime_ns == b.runtime_ns  # simlint: disable=SL004
        assert a.ipc == b.ipc
        assert a.events == b.events

    def test_all_requests_serviced(self, small_trace):
        res = run_fullsystem(small_trace, "two_stage")
        n = res.controller.read_latency.count + res.controller.write_latency.count
        assert n == len(small_trace)


class TestForwardingEffect:
    def test_forwarding_reduces_read_latency(self):
        """Write-then-read of the same line: with forwarding the read is
        answered from the write queue; without it the read waits behind
        the full drain of the bank."""
        from repro.trace.record import OP_READ, OP_WRITE, RECORD_DTYPE, Trace

        rows = []
        for i in range(30):
            rows.append((0, OP_WRITE, 20, i % 8))
            rows.append((0, OP_READ, 20, i % 8))
        records = np.array(rows, dtype=RECORD_DTYPE)
        counts = np.full((30, 8, 2), 2, dtype=np.uint8)
        trace = Trace("wtr", 1, records, counts)

        on = run_fullsystem(trace, "dcw", enable_forwarding=True)
        off = run_fullsystem(trace, "dcw", enable_forwarding=False)
        assert on.controller.forwarded_reads > 0
        assert on.mean_read_latency_ns < off.mean_read_latency_ns
