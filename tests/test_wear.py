"""Tests for the endurance substrate (wear tracking + Start-Gap)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pcm.wear import StartGapLeveler, WearTracker


class TestWearTracker:
    def test_records_accumulate(self):
        t = WearTracker()
        t.record(5, 3, 2)
        t.record(5, 1, 0)
        assert t.programs_of(5) == 6
        assert t.total_programs == 6

    def test_zero_programs_ignored(self):
        t = WearTracker()
        t.record(1, 0, 0)
        assert t.stats().lines_touched == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            WearTracker().record(0, -1, 0)

    def test_stats(self):
        t = WearTracker()
        t.record(0, 10, 0)
        t.record(1, 0, 20)
        s = t.stats()
        assert s.lines_touched == 2
        assert s.max_programs == 20
        assert s.mean_programs == 15.0
        assert s.total_programs == 30

    def test_lifetime_scales_with_skew(self):
        balanced, skewed = WearTracker(), WearTracker()
        for i in range(10):
            balanced.record(i, 10, 0)
        skewed.record(0, 91, 0)
        for i in range(1, 10):
            skewed.record(i, 1, 0)
        assert balanced.stats().lifetime_writes() > skewed.stats().lifetime_writes()

    def test_empty_lifetime_infinite(self):
        assert WearTracker().stats().lifetime_writes() == float("inf")


class TestStartGapMapping:
    def test_initial_identity(self):
        sg = StartGapLeveler(num_lines=8)
        assert [sg.physical_of(i) for i in range(8)] == list(range(8))

    def test_mapping_is_always_a_bijection(self):
        sg = StartGapLeveler(num_lines=8, gap_interval=1)
        for _ in range(200):
            physical = [sg.physical_of(i) for i in range(8)]
            assert len(set(physical)) == 8
            assert sg.gap not in physical     # nobody maps to the gap
            assert all(0 <= p <= 8 for p in physical)
            sg.on_write(0)

    def test_gap_walks_downward_then_wraps(self):
        sg = StartGapLeveler(num_lines=4, gap_interval=1)
        gaps = [sg.gap]
        for _ in range(6):
            sg.on_write(0)
            gaps.append(sg.gap)
        assert gaps[:6] == [4, 3, 2, 1, 0, 4]
        assert sg.start == 1  # one full wrap advanced the start pointer

    def test_every_line_visits_every_slot(self):
        sg = StartGapLeveler(num_lines=4, gap_interval=1)
        seen = {i: {sg.physical_of(i)} for i in range(4)}
        for _ in range(4 * 5 + 5):  # > num_lines full gap cycles
            sg.on_write(0)
            for i in range(4):
                seen[i].add(sg.physical_of(i))
        for i in range(4):
            assert seen[i] == set(range(5)), f"line {i} missed a slot"

    def test_migration_cost_rate(self):
        sg = StartGapLeveler(num_lines=16, gap_interval=10)
        for _ in range(1000):
            sg.on_write(3)
        assert sg.migrations == 100
        assert sg.overhead_fraction == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            StartGapLeveler(num_lines=1)
        with pytest.raises(ValueError):
            StartGapLeveler(num_lines=4, gap_interval=0)
        with pytest.raises(ValueError):
            StartGapLeveler(num_lines=4).physical_of(4)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=2, max_value=32),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=300),
    )
    def test_bijection_property(self, n, interval, steps):
        sg = StartGapLeveler(num_lines=n, gap_interval=interval)
        for _ in range(steps):
            sg.on_write(0)
        physical = [sg.physical_of(i) for i in range(n)]
        assert len(set(physical)) == n
        assert sg.gap not in physical


class TestLevelingEffect:
    def test_start_gap_flattens_hot_line_wear(self):
        """A 90 %-hot single line: without leveling the hot physical slot
        takes ~90 % of wear; with Start-Gap the wear spreads."""
        rng = np.random.default_rng(0)
        N = 32
        demands = np.where(rng.random(20000) < 0.9, 0, rng.integers(1, N, 20000))

        flat = WearTracker()
        for la in demands:
            flat.record(int(la), 10, 0)

        leveled = WearTracker()
        sg = StartGapLeveler(num_lines=N, gap_interval=16)
        for la in demands:
            leveled.record(sg.physical_of(int(la)), 10, 0)
            moved = sg.on_write(int(la))
            if moved is not None:
                leveled.record(moved, 10, 0)  # the migration write

        assert leveled.stats().max_programs < flat.stats().max_programs / 3
        assert leveled.stats().cov < flat.stats().cov
