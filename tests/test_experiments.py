"""Tests for the experiment harnesses (fig03 / fig10 / runner / ablation)."""

import numpy as np
import pytest

from repro.config import default_config
from repro.experiments.ablation import (
    sweep_no_flip,
    sweep_power_asymmetry,
    sweep_power_budget,
    sweep_time_asymmetry,
    sweep_write_unit_width,
)
from repro.experiments.fig03 import measure_bit_profile, run_fig03
from repro.experiments.fig10 import measure_write_units, run_fig10
from repro.experiments.fullsystem import precompute_write_service
from repro.experiments.runner import (
    BASELINE_SCHEME,
    run_schemes_on_workloads,
)
from repro.trace.synthetic import generate_trace


@pytest.fixture(scope="module")
def dedup_trace():
    return generate_trace("dedup", requests_per_core=400, seed=7)


class TestFig03:
    def test_fast_path_means(self, dedup_trace):
        row = measure_bit_profile(dedup_trace)
        assert 8 <= row.mean_set + row.mean_reset <= 16
        assert row.mean_set > row.mean_reset  # dedup is SET-dominant

    def test_functional_path_agrees_with_counts(self):
        """The measurement through realized payloads + the real read
        stage must agree with the trace's drawn counts (the content model
        round-trips through Algorithm 1)."""
        trace = generate_trace("bodytrack", requests_per_core=60, seed=3)
        fast = measure_bit_profile(trace)
        slow = measure_bit_profile(trace, functional=True, max_writes=60)
        assert slow.mean_set == pytest.approx(fast.mean_set, rel=0.25)
        assert slow.mean_reset == pytest.approx(fast.mean_reset, rel=0.3)

    def test_run_fig03_rows(self):
        rows = run_fig03(("blackscholes", "vips"), requests_per_core=300)
        by_name = {r.workload: r for r in rows}
        assert by_name["blackscholes"].total < by_name["vips"].total


class TestFig10:
    def test_baseline_constants(self, dedup_trace):
        row = measure_write_units(dedup_trace)
        assert row.dcw == 8.0
        assert row.flip_n_write == 4.0
        assert row.two_stage == pytest.approx(3.0)
        assert row.three_stage == pytest.approx(2.5)

    def test_tetris_in_paper_band(self, dedup_trace):
        row = measure_write_units(dedup_trace)
        # Paper: 1.06 - 1.46 across workloads; dedup is at the heavy end.
        assert 1.0 <= row.tetris <= 1.6

    def test_run_fig10_ordering(self):
        rows = run_fig10(("blackscholes", "dedup"), requests_per_core=300)
        by_name = {r.workload: r for r in rows}
        assert by_name["blackscholes"].tetris <= by_name["dedup"].tetris


class TestPrecompute:
    def test_baselines_constant_service(self, dedup_trace):
        t = precompute_write_service(dedup_trace, "flip_n_write")
        assert np.allclose(t.service_ns, t.service_ns[0])
        assert t.mean_units() == 4.0

    def test_tetris_content_dependent(self, dedup_trace):
        t = precompute_write_service(dedup_trace, "tetris")
        assert t.units.std() > 0
        assert t.service_ns.min() >= 50.0 + 102.5  # read + analysis floor

    def test_energy_ordering_table1(self, dedup_trace):
        e = {
            name: precompute_write_service(dedup_trace, name).energy.mean()
            for name in ("dcw", "conventional", "flip_n_write", "two_stage",
                          "three_stage", "tetris")
        }
        # Table I: comparison-based schemes reduce energy; 2SW/conv don't.
        assert e["tetris"] < e["two_stage"]
        assert e["three_stage"] < e["conventional"]
        assert e["flip_n_write"] < e["two_stage"]

    def test_service_lengths_match_writes(self, dedup_trace):
        t = precompute_write_service(dedup_trace, "tetris")
        assert t.service_ns.shape == (dedup_trace.n_writes,)


class TestRunner:
    def test_grid_shape(self):
        results = run_schemes_on_workloads(
            ("dcw", "tetris"), ("swaptions",), requests_per_core=300
        )
        assert len(results) == 2
        assert {r.scheme for r in results} == {"dcw", "tetris"}

    def test_normalization_baseline_is_unity(self):
        results = run_schemes_on_workloads(
            (BASELINE_SCHEME, "tetris"), ("dedup",), requests_per_core=300
        )
        base = next(r for r in results if r.scheme == BASELINE_SCHEME)
        norm = base.normalized(base)
        assert all(v == pytest.approx(1.0) for v in norm.values())

    def test_trace_reuse(self):
        trace = generate_trace("dedup", 200, seed=5)
        results = run_schemes_on_workloads(
            ("dcw",), ("dedup",), traces={"dedup": trace}
        )
        assert results[0].workload == "dedup"


class TestAblations:
    def test_budget_sweep_monotone(self, dedup_trace):
        pts = sweep_power_budget(dedup_trace)
        units = [p.mean_units for p in pts]
        assert all(a >= b - 1e-9 for a, b in zip(units, units[1:]))

    def test_K_sweep_runs(self, dedup_trace):
        pts = sweep_time_asymmetry(dedup_trace)
        assert len(pts) == 5
        assert all(p.mean_units > 0 for p in pts)

    def test_L_sweep_monotone_nondec(self, dedup_trace):
        """Costlier RESETs can only make packing harder."""
        pts = sweep_power_asymmetry(dedup_trace)
        units = [p.mean_units for p in pts]
        assert all(b >= a - 1e-9 for a, b in zip(units, units[1:]))

    def test_width_sweep_mobile_modes(self, dedup_trace):
        pts = sweep_write_unit_width(dedup_trace)
        units = {int(p.value): p.mean_units for p in pts}
        # Narrower write units (less current) -> more write units needed.
        assert units[2] > units[4] > units[8] > units[16]

    def test_no_flip_costs_more(self, dedup_trace):
        flip_pt, noflip_pt = sweep_no_flip(dedup_trace)
        assert noflip_pt.mean_units >= flip_pt.mean_units
