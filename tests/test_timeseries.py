"""Tests for TimeSeries, sparkline rendering and occupancy tracing."""

import numpy as np
import pytest

from repro.analysis.report import sparkline
from repro.config import default_config
from repro.cpu.system import CMPSystem
from repro.experiments.fullsystem import (
    PrecomputedServiceModel,
    precompute_write_service,
)
from repro.sim.stats import TimeSeries
from repro.trace.synthetic import generate_trace


class TestTimeSeries:
    def test_samples_append(self):
        ts = TimeSeries()
        ts.sample(0.0, 1.0)
        ts.sample(5.0, 3.0)
        assert len(ts) == 2
        assert ts.max() == 3.0

    def test_rejects_time_travel(self):
        ts = TimeSeries()
        ts.sample(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.sample(1.0, 2.0)

    def test_resample_step_function(self):
        ts = TimeSeries()
        ts.sample(0.0, 0.0)
        ts.sample(50.0, 10.0)
        ts.sample(100.0, 10.0)
        out = ts.resample(2)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(10.0)

    def test_resample_empty(self):
        assert TimeSeries().resample(4).tolist() == [0.0] * 4

    def test_resample_single_point(self):
        ts = TimeSeries()
        ts.sample(1.0, 7.0)
        assert (ts.resample(3) == 7.0).all()

    def test_time_above(self):
        ts = TimeSeries()
        ts.sample(0.0, 5.0)     # above 3 for 10 ns
        ts.sample(10.0, 1.0)    # below
        ts.sample(30.0, 9.0)    # terminal sample: no following interval
        assert ts.time_above(3.0) == pytest.approx(10.0)

    def test_resample_validates(self):
        with pytest.raises(ValueError):
            TimeSeries().resample(0)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_ramp(self):
        out = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert out[0] == "▁" and out[-1] == "█"
        assert len(out) == 8

    def test_flat_zero(self):
        assert sparkline([0, 0, 0]) == "▁▁▁"

    def test_shared_peak_scale(self):
        a = sparkline([1, 1], peak=8.0)
        b = sparkline([8, 8], peak=8.0)
        assert a == "▂▂" or a == "▁▁"
        assert b == "██"


class TestOccupancyTracing:
    def test_controller_traces_write_queue(self):
        cfg = default_config()
        trace = generate_trace("dedup", requests_per_core=150, seed=2)
        table = precompute_write_service(trace, "dcw", cfg)
        system = CMPSystem(
            trace, cfg, PrecomputedServiceModel(table, cfg), scheme_name="dcw"
        )
        series = system.controller.track_write_occupancy()
        system.run()
        assert len(series) > 0
        # Occupancy stays within the queue capacity.
        assert series.max() <= cfg.memctrl.write_queue_entries
        # Every enqueue and every dequeue sampled: 2 samples per write.
        assert len(series) == 2 * trace.n_writes

    def test_tracing_off_by_default(self):
        cfg = default_config()
        trace = generate_trace("dedup", requests_per_core=50, seed=2)
        table = precompute_write_service(trace, "dcw", cfg)
        system = CMPSystem(
            trace, cfg, PrecomputedServiceModel(table, cfg), scheme_name="dcw"
        )
        system.run()
        assert system.controller.occupancy_trace is None
