"""Tests for the unaligned Tetris-Relaxed extension scheme."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.fullsystem import precompute_write_service, run_fullsystem
from repro.pcm.state import LineState
from repro.schemes import get_scheme
from repro.trace.synthetic import generate_trace

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
line = st.lists(u64, min_size=8, max_size=8).map(
    lambda xs: np.array(xs, dtype=np.uint64)
)


class TestTetrisRelaxed:
    def test_registered(self):
        assert get_scheme("tetris_relaxed").name == "tetris_relaxed"

    def test_commits_logical_data(self, rng, line8):
        scheme = get_scheme("tetris_relaxed")
        state = LineState.from_logical(line8.copy())
        new = line8 ^ np.uint64(0xFFF)
        scheme.write(state, new)
        assert np.array_equal(state.logical, new)

    @settings(max_examples=40, deadline=None)
    @given(line, line)
    def test_never_slower_than_aligned_tetris(self, old, new):
        relaxed = get_scheme("tetris_relaxed")
        aligned = get_scheme("tetris")
        out_r = relaxed.write(LineState.from_logical(old.copy()), new)
        out_a = aligned.write(LineState.from_logical(old.copy()), new)
        assert out_r.units <= out_a.units + 1e-9
        assert out_r.n_set == out_a.n_set
        assert out_r.n_reset == out_a.n_reset

    def test_budget_respected(self, rng, line8):
        scheme = get_scheme("tetris_relaxed")
        new = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
        scheme.write(LineState.from_logical(line8.copy()), new)
        sched = scheme.last_schedule
        assert sched.occupancy().max() <= scheme.config.bank_power_budget + 1e-9

    def test_precompute_and_fullsystem(self):
        trace = generate_trace("ferret", requests_per_core=120, seed=7)
        table_r = precompute_write_service(trace, "tetris_relaxed")
        table_a = precompute_write_service(trace, "tetris")
        assert (table_r.units <= table_a.units + 1e-9).all()
        res = run_fullsystem(trace, "tetris_relaxed", table=table_r)
        done = res.controller.read_latency.count + res.controller.write_latency.count
        assert done == len(trace)
