"""Tests for the functional PCM chip (cell-level schedule execution)."""

import numpy as np
import pytest

from repro.core.analysis import analyze
from repro.core.read_stage import read_stage
from repro.pcm.chip import PCMChip


@pytest.fixture
def chips():
    return [PCMChip(chip_id=c, slice_bits=16, power_budget=32.0) for c in range(4)]


class TestSlicing:
    def test_lane_mask(self):
        assert PCMChip(0).lane_mask == 0xFFFF

    def test_slice_extraction(self):
        chip2 = PCMChip(chip_id=2)
        word = 0xAAAA_BBBB_CCCC_DDDD
        assert chip2.slice_of(word) == 0xBBBB

    def test_load_and_read(self, chips, line8):
        for chip in chips:
            chip.load(7, line8)
        rebuilt = np.zeros(8, dtype=np.uint64)
        for chip in chips:
            rebuilt |= chip.stored_word_slice(7, 8)
        assert np.array_equal(rebuilt, line8)


class TestBurstExecution:
    def test_set_burst_counts(self):
        chip = PCMChip(0)
        chip._cells[(0, 0)] = 0b0000
        n, current = chip.execute_burst(0, 0, 0b1111, "set")
        assert n == 4
        assert chip.read(0, 0) == 0b1111
        assert chip.set_programs == 4

    def test_reset_burst_counts(self):
        chip = PCMChip(0)
        chip._cells[(0, 0)] = 0b1111
        n, _ = chip.execute_burst(0, 0, 0b0011, "reset")
        assert n == 2
        assert chip.read(0, 0) == 0b0011
        assert chip.reset_programs == 2


class TestScheduleExecution:
    def test_full_line_write_converges(self, chips, rng, line8):
        """Schedule a line write, execute on 4 chips, rebuild the image."""
        new = line8.copy()
        new ^= rng.integers(0, 1 << 12, size=8, dtype=np.uint64)  # few low-bit changes
        rs = read_stage(line8, np.zeros(8, bool), new)
        sched = analyze(rs.n_set, rs.n_reset, power_budget=128.0)

        pooled = np.zeros(max(sched.total_sub_slots, 1))
        for chip in chips:
            chip.load(3, line8)
        for chip in chips:
            cur = chip.execute_schedule(3, sched, rs.physical, L=2.0)
            pooled[: cur.size] += cur

        rebuilt = np.zeros(8, dtype=np.uint64)
        for chip in chips:
            rebuilt |= chip.stored_word_slice(3, 8)
        assert np.array_equal(rebuilt, rs.physical)
        # GCP constraint: pooled current within the bank budget.
        assert pooled.max() <= 128.0 + 1e-9

    def test_endurance_counters_accumulate(self, chips, line8):
        new = line8 ^ np.uint64(0xFF)
        rs = read_stage(line8, np.zeros(8, bool), new)
        sched = analyze(rs.n_set, rs.n_reset, power_budget=128.0)
        total = 0
        for chip in chips:
            chip.load(0, line8)
            chip.execute_schedule(0, sched, rs.physical, L=2.0)
            total += chip.set_programs + chip.reset_programs
        assert total == rs.total_bit_writes
