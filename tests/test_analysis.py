"""Tests for Algorithm 2 (the scalar Tetris scheduler)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import ScheduleError, TetrisScheduler, analyze

counts8 = st.lists(st.integers(min_value=0, max_value=32), min_size=8, max_size=8)


class TestBasicPacking:
    def test_empty_write_is_free(self):
        sched = analyze(np.zeros(8, int), np.zeros(8, int))
        assert sched.result == 0
        assert sched.subresult == 0
        assert sched.service_units() == 0.0

    def test_single_unit_single_write_unit(self):
        sched = analyze([5, 0, 0, 0, 0, 0, 0, 0], [0] * 8)
        assert sched.result == 1
        assert sched.subresult == 0

    def test_all_write1s_fit_one_unit_when_under_budget(self):
        # 8 units x 16 SETs = 128 = the GCP bank budget exactly.
        sched = analyze([16] * 8, [0] * 8, power_budget=128.0)
        assert sched.result == 1

    def test_budget_overflow_opens_second_unit(self):
        sched = analyze([16] * 8 + [], [0] * 8, power_budget=127.0)
        assert sched.result == 2

    def test_write0_hides_in_interspace(self):
        # Write-1s leave 128-100=28 headroom; write-0 of 10 cells draws 20.
        sched = analyze([100, 0, 0, 0], [0, 10, 0, 0], power_budget=128.0)
        assert sched.result == 1
        assert sched.subresult == 0

    def test_write0_overflow_appends_subunit(self):
        # No headroom at all: write-1 saturates the budget.
        sched = analyze([128, 0], [0, 10], power_budget=128.0, allow_split=False)
        assert sched.result == 1
        assert sched.subresult == 1
        assert sched.service_units() == pytest.approx(1 + 1 / 8)

    def test_pure_reset_write_uses_only_subunits(self):
        sched = analyze([0] * 8, [4] * 8, power_budget=128.0)
        assert sched.result == 0
        # 8 bursts x 8 current; 16 fit per sub-slot... all in 1 slot:
        # 8 units x 4 RESETs x L=2 = 64 <= 128.
        assert sched.subresult == 1
        assert sched.service_units() == pytest.approx(1 / 8)

    def test_paper_fig4_example(self):
        """The worked example of §III: write-1s 8+7+7+6+3=31 fit the chip
        budget of 32; the remaining three units (6,6,5) go to unit 2; all
        write-0s hide in the interspaces -> 2 write units, T1 < T2=2.5."""
        n_set = [8, 7, 7, 6, 6, 6, 5, 3]
        n_reset = [1, 1, 1, 2, 3, 2, 2, 5]
        sched = analyze(n_set, n_reset, power_budget=32.0)
        assert sched.result == 2
        assert sched.subresult == 0
        assert sched.service_units() == 2.0


class TestFFDOrdering:
    def test_largest_first(self):
        sched = analyze([10, 30, 20, 0], [0] * 4, power_budget=32.0)
        # FFD: 30 -> WU0; 20 -> WU1 (30+20>32); 10 -> WU1 (20+10<=32).
        slots = {op.unit: op.slot for op in sched.write1_queue}
        assert slots[1] == 0
        assert slots[2] == 1
        assert slots[0] == 1
        assert sched.result == 2

    def test_zero_counts_not_scheduled(self):
        sched = analyze([5, 0], [0, 0])
        assert sched.units_in_queue("write1") == {0}
        assert sched.units_in_queue("write0") == set()


class TestPowerChecks:
    def test_oversized_write1_raises_without_split(self):
        with pytest.raises(ScheduleError):
            analyze([40], [0], power_budget=32.0)

    def test_oversized_write0_raises_without_split(self):
        with pytest.raises(ScheduleError):
            analyze([0], [20], power_budget=32.0)  # 20 * L=2 = 40 > 32

    def test_split_divides_oversized_write1(self):
        sched = analyze([40], [0], power_budget=32.0, allow_split=True)
        assert sched.result == 2
        chunks = [op for op in sched.write1_queue if op.unit == 0]
        assert len(chunks) == 2
        assert sum(op.current for op in chunks) == pytest.approx(40.0)

    def test_split_divides_oversized_write0(self):
        sched = analyze([0], [20], power_budget=32.0, allow_split=True)
        # 40 current -> chunks 32 + 8, each one sub-slot.
        assert sched.result == 0
        assert sched.subresult == 2

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            analyze([-1], [0])

    def test_rejects_bad_constructor_args(self):
        with pytest.raises(ValueError):
            TetrisScheduler(0, 2.0, 128.0)
        with pytest.raises(ValueError):
            TetrisScheduler(8, 0.0, 128.0)
        with pytest.raises(ValueError):
            TetrisScheduler(8, 2.0, -1.0)


class TestExclusiveSlots:
    def test_exclusive_moves_own_write0_out(self):
        # One unit with both phases; budget allows same-slot overlap.
        base = analyze([10], [2], power_budget=128.0)
        assert base.subresult == 0  # write-0 hides under its own write-1
        excl = analyze(
            [10], [2], power_budget=128.0, exclusive_unit_slots=True
        )
        # With exclusivity the only interspace slots belong to the unit's
        # own write unit -> the write-0 needs an extra sub-slot.
        assert excl.subresult == 1


class TestScheduleInvariants:
    @settings(max_examples=200)
    @given(counts8, counts8)
    def test_schedule_validates(self, n_set, n_reset):
        sched = analyze(n_set, n_reset)
        sched.validate()  # raises on any violated invariant

    @settings(max_examples=200)
    @given(counts8, counts8)
    def test_every_changed_unit_scheduled_exactly_once(self, n_set, n_reset):
        sched = analyze(n_set, n_reset)
        assert sched.units_in_queue("write1") == {
            i for i, c in enumerate(n_set) if c > 0
        }
        assert sched.units_in_queue("write0") == {
            i for i, c in enumerate(n_reset) if c > 0
        }

    @settings(max_examples=200)
    @given(counts8, counts8)
    def test_budget_never_exceeded(self, n_set, n_reset):
        sched = analyze(n_set, n_reset)
        occ = sched.occupancy()
        assert occ.size == 0 or occ.max() <= 128.0 + 1e-9

    @settings(max_examples=200)
    @given(counts8, counts8)
    def test_never_worse_than_three_stage_structure(self, n_set, n_reset):
        """Tetris's unit count is bounded by the 3SW phase structure:
        every write-1 fits (1/2L of the budget each after flip) and every
        write-0 fits, so result <= ceil(sum(IN1)/budget-fit bound).  We
        check the paper-level claim: never more than N/M write units plus
        the overflow sub-slots bound."""
        sched = analyze(n_set, n_reset)
        assert sched.result <= 8
        assert sched.subresult <= 8

    @settings(max_examples=100)
    @given(counts8, counts8)
    def test_monotone_in_budget(self, n_set, n_reset):
        small = analyze(n_set, n_reset, power_budget=64.0)
        large = analyze(n_set, n_reset, power_budget=256.0)
        assert large.service_units() <= small.service_units() + 1e-9
