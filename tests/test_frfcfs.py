"""Tests for the FR-FCFS policy: read priority, drain watermarks, rows."""

import pytest

from repro.config import MemCtrlConfig
from repro.memctrl.frfcfs import FRFCFSPolicy, RowBufferModel
from repro.memctrl.queues import BoundedQueue
from repro.memctrl.request import MemRequest, ReqKind


def req(i, line=0, bank=0, kind=ReqKind.READ):
    return MemRequest(req_id=i, kind=kind, core=0, line=line, bank=bank)


@pytest.fixture
def queues():
    return BoundedQueue(32, "read"), BoundedQueue(32, "write")


def make_policy(**kw):
    return FRFCFSPolicy(MemCtrlConfig(**kw))


class TestReadPriority:
    def test_read_wins_when_not_draining(self, queues):
        rq, wq = queues
        rq.push(req(1, bank=0))
        wq.push(req(2, bank=0, kind=ReqKind.WRITE))
        pick = make_policy().select(0, rq, wq)
        assert pick.req_id == 1

    def test_no_opportunistic_write_by_default(self, queues):
        rq, wq = queues
        wq.push(req(1, bank=0, kind=ReqKind.WRITE))
        assert make_policy().select(0, rq, wq) is None

    def test_opportunistic_write_when_enabled(self, queues):
        rq, wq = queues
        wq.push(req(1, bank=0, kind=ReqKind.WRITE))
        pick = make_policy(opportunistic_drain=True).select(0, rq, wq)
        assert pick.req_id == 1

    def test_nothing_pending_returns_none(self, queues):
        rq, wq = queues
        assert make_policy().select(0, rq, wq) is None


class TestDrainStateMachine:
    def test_enters_drain_at_high_watermark(self, queues):
        rq, wq = queues
        policy = make_policy(drain_high_watermark=4, drain_low_watermark=1)
        for i in range(4):
            wq.push(req(i, bank=0, kind=ReqKind.WRITE))
        rq.push(req(99, bank=0))
        pick = policy.select(0, rq, wq)
        assert policy.draining
        assert pick.kind is ReqKind.WRITE
        assert policy.drain_entries == 1

    def test_exits_drain_at_low_watermark(self, queues):
        rq, wq = queues
        policy = make_policy(drain_high_watermark=4, drain_low_watermark=1)
        writes = [req(i, bank=0, kind=ReqKind.WRITE) for i in range(4)]
        for w in writes:
            wq.push(w)
        policy.update_drain_state(wq)
        assert policy.draining
        for w in writes[:3]:
            wq.remove(w)
        policy.update_drain_state(wq)
        assert not policy.draining

    def test_reads_starve_during_drain(self, queues):
        rq, wq = queues
        policy = make_policy(drain_high_watermark=2, drain_low_watermark=0)
        rq.push(req(50, bank=0))
        wq.push(req(1, bank=0, kind=ReqKind.WRITE))
        wq.push(req(2, bank=0, kind=ReqKind.WRITE))
        assert policy.select(0, rq, wq).kind is ReqKind.WRITE

    def test_drain_falls_back_to_reads_for_other_banks(self, queues):
        rq, wq = queues
        policy = make_policy(drain_high_watermark=1, drain_low_watermark=0)
        wq.push(req(1, bank=3, kind=ReqKind.WRITE))
        rq.push(req(2, bank=0))
        # Bank 0 has no write; during drain it may still serve its read.
        assert policy.select(0, rq, wq).req_id == 2

    def test_force_drain_overrides_watermarks(self, queues):
        rq, wq = queues
        policy = make_policy()
        wq.push(req(1, bank=0, kind=ReqKind.WRITE))
        policy.force_drain = True
        assert policy.select(0, rq, wq).kind is ReqKind.WRITE


class TestRowBuffer:
    def test_hit_miss_latency(self):
        rb = RowBufferModel(lines_per_row=4, hit_ns=30.0, miss_ns=60.0)
        assert rb.access(0, 0) == 60.0    # cold miss opens row 0
        assert rb.access(0, 1) == 30.0    # same row -> hit
        assert rb.access(0, 5) == 60.0    # row 1 -> miss

    def test_per_bank_rows(self):
        rb = RowBufferModel(lines_per_row=4)
        rb.access(0, 0)
        assert not rb.is_hit(1, 0)

    def test_row_hit_first_selection(self):
        rb = RowBufferModel(lines_per_row=4)
        rb.access(0, 8)  # open row 2 on bank 0
        policy = FRFCFSPolicy(MemCtrlConfig(), rb)
        rq = BoundedQueue(8)
        wq = BoundedQueue(8)
        rq.push(req(1, line=0, bank=0))   # row 0: miss
        rq.push(req(2, line=9, bank=0))   # row 2: hit -> preferred
        assert policy.select(0, rq, wq).req_id == 2
