"""Tests for cost-aware flip (CAFO), trace capture and multi-rank support."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PCMOrganization, default_config
from repro.core.read_stage import cost_aware_flip, read_stage
from repro.experiments.fullsystem import run_fullsystem
from repro.pcm.device import AddressMap, PCMDevice
from repro.schemes import get_scheme
from repro.trace.capture import capture_trace

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
_MASK = (1 << 64) - 1
E_SET, E_RESET = 430.0, 106.0


def _cost(old, new_phys, flip_new, flip_old):
    n_set = (~old & new_phys & _MASK).bit_count()
    n_reset = (old & ~new_phys & _MASK).bit_count()
    tag = 0.0
    if flip_new != flip_old:
        tag = E_SET if flip_new else E_RESET
    return n_set * E_SET + n_reset * E_RESET + tag


class TestCostAwareFlip:
    def test_prefers_resets_when_sets_expensive(self):
        """33 SETs vs (after flip) 31 RESETs: count-based flip says flip;
        cost-aware agrees here, but 20 SETs vs 44 RESETs flips only
        count-wise when >32 — the cost rule flips earlier for SET-heavy
        patterns: 20 SETs (8600) > 44 RESETs + tag (4664+430)."""
        old = 0
        new = (1 << 20) - 1  # 20 SETs straight; flipped -> 44 SETs?? no:
        # flipped store = ~new: old=0 -> program 44 SETs. More costly.
        rs_plain = read_stage(
            np.array([old], dtype=np.uint64), np.array([False]),
            np.array([new], dtype=np.uint64),
        )
        rs_cost = cost_aware_flip(
            np.array([old], dtype=np.uint64), np.array([False]),
            np.array([new], dtype=np.uint64),
        )
        assert not rs_plain.flip[0] and not rs_cost.flip[0]

    def test_flips_to_trade_sets_for_resets(self):
        """Old all-ones, new has 30 zeros: straight needs 30 RESETs
        (3180); flipped stores ~new -> needs 34 RESETs... construct a
        case where flipping converts SETs into RESETs:
        old = 0, new with 25 ones -> straight 25 SETs (10750);
        flip stores ~new: 39 SETs (16770) - worse.  Use old = all-ones:
        new with 25 ones -> straight RESETs 39 (4134); flipped stores
        ~new with 39 ones -> RESETs 25 (2650) + tag SET 430 = 3080 <
        4134: cost-aware flips although only 39 < 32 is false for
        count-based (39 > 32 also flips).  Tighter: new with 35 ones ->
        straight RESETs 29 (3074); flipped RESETs 35+... compute below.
        """
        old = _MASK
        new = (1 << 25) - 1
        o = np.array([old], dtype=np.uint64)
        f = np.array([False])
        n = np.array([new], dtype=np.uint64)
        rs_cost = cost_aware_flip(o, f, n)
        # Verify optimality directly instead of hand-arithmetic.
        chosen = _cost(old, int(rs_cost.physical[0]), bool(rs_cost.flip[0]), False)
        other_phys = ~new & _MASK if not rs_cost.flip[0] else new
        other = _cost(old, other_phys, not rs_cost.flip[0], False)
        assert chosen <= other

    @settings(max_examples=150, deadline=None)
    @given(u64, st.booleans(), u64)
    def test_always_picks_cheaper_encoding(self, old, flip_old, new):
        o = np.array([old], dtype=np.uint64)
        f = np.array([flip_old])
        n = np.array([new], dtype=np.uint64)
        rs = cost_aware_flip(o, f, n)
        straight_cost = _cost(old, new, False, flip_old)
        flipped_cost = _cost(old, ~new & _MASK, True, flip_old)
        chosen = flipped_cost if rs.flip[0] else straight_cost
        assert chosen <= min(straight_cost, flipped_cost) + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(u64, st.booleans(), u64)
    def test_never_more_expensive_than_count_flip(self, old, flip_old, new):
        o = np.array([old], dtype=np.uint64)
        f = np.array([flip_old])
        n = np.array([new], dtype=np.uint64)
        cost_rs = cost_aware_flip(o, f, n)
        count_rs = read_stage(o, f, n)
        cost_energy = (
            int(cost_rs.n_set[0]) * E_SET + int(cost_rs.n_reset[0]) * E_RESET
        )
        count_energy = (
            int(count_rs.n_set[0]) * E_SET + int(count_rs.n_reset[0]) * E_RESET
        )
        # Including tag costs, the cost-aware choice is globally optimal;
        # excluding them it can differ only by one tag's worth.
        assert cost_energy <= count_energy + E_SET

    @settings(max_examples=60, deadline=None)
    @given(u64, u64)
    def test_logical_value_recoverable(self, old, new):
        o = np.array([old], dtype=np.uint64)
        rs = cost_aware_flip(o, np.array([False]), np.array([new], dtype=np.uint64))
        logical = ~int(rs.physical[0]) & _MASK if rs.flip[0] else int(rs.physical[0])
        assert logical == new


class TestCaptureTrace:
    def _stream(self, n=30_000):
        rng = np.random.default_rng(4)
        hot = rng.random(n) < 0.8
        lines = np.where(hot, rng.integers(0, 1024, n), rng.integers(0, 200_000, n))
        stores = rng.random(n) < 0.3
        return list(zip(lines.tolist(), stores.tolist()))

    def test_capture_produces_replayable_trace(self):
        trace = capture_trace(self._stream(), name="synthcpu")
        assert trace.workload == "synthcpu"
        assert trace.n_reads > 0 and trace.n_writes > 0
        res = run_fullsystem(trace, "tetris")
        assert res.controller.completed == len(trace)

    def test_capture_meta_records_hierarchy(self):
        trace = capture_trace(self._stream(5000))
        assert trace.meta["captured"] is True
        assert 0 <= trace.meta["l1_hit_rate"] <= 1

    def test_flush_conserves_dirty_lines(self):
        # All-store stream to a tiny set: without flush, dirty lines
        # would vanish inside the LLC.
        stream = [(i % 64, True) for i in range(5000)]
        with_flush = capture_trace(stream, flush_at_end=True)
        without = capture_trace(stream, flush_at_end=False)
        assert with_flush.n_writes >= without.n_writes + 1

    def test_custom_profile(self):
        trace = capture_trace(self._stream(5000), content_profile="vips")
        mean_set, mean_reset = trace.mean_bit_profile()
        assert mean_set + mean_reset > 12  # vips's heavy profile


class TestMultiRank:
    def test_global_bank_indexing(self):
        amap = AddressMap(num_banks=8, num_ranks=2)
        seen = {amap.global_bank_of_line(i) for i in range(16)}
        assert seen == set(range(16))

    def test_device_builds_ranks_x_banks(self):
        cfg = default_config().replace(
            organization=PCMOrganization(num_ranks=2)
        )
        dev = PCMDevice(lambda c: get_scheme("dcw", c), cfg)
        assert len(dev.banks) == 16

    def test_two_ranks_double_parallelism(self):
        from repro.trace.synthetic import generate_trace

        trace = generate_trace("vips", requests_per_core=500, seed=6)
        one = default_config()
        two = one.replace(organization=PCMOrganization(num_ranks=2))
        r1 = run_fullsystem(trace, "dcw", one)
        r2 = run_fullsystem(trace, "dcw", two)
        assert r2.runtime_ns < r1.runtime_ns
        assert r2.mean_read_latency_ns < r1.mean_read_latency_ns
