"""Tests for the streaming statistics accumulators."""

import math

import numpy as np
import pytest

from repro.sim.stats import Histogram, LatencyStat, StatRegistry


class TestLatencyStat:
    def test_mean_min_max(self):
        s = LatencyStat()
        for v in (10.0, 20.0, 30.0):
            s.add(v)
        assert s.mean == pytest.approx(20.0)
        assert s.min == 10.0
        assert s.max == 30.0
        assert s.count == 3
        assert s.total == 60.0

    def test_welford_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(100.0, size=500)
        s = LatencyStat()
        for v in data:
            s.add(float(v))
        assert s.mean == pytest.approx(data.mean())
        assert s.std == pytest.approx(data.std(ddof=1))

    def test_empty_stat(self):
        s = LatencyStat()
        assert s.mean == 0.0
        assert s.variance == 0.0
        assert s.summary()["count"] == 0

    def test_single_value_variance(self):
        s = LatencyStat()
        s.add(5.0)
        assert s.variance == 0.0


class TestHistogram:
    def test_binning(self):
        h = Histogram("lat", bin_width=10.0, num_bins=4)
        for v in (5, 15, 15, 45):
            h.add(v)
        assert h.counts[0] == 1
        assert h.counts[1] == 2
        assert h.counts[4] == 1  # overflow bin

    def test_percentile(self):
        h = Histogram("lat", bin_width=1.0, num_bins=100)
        for v in range(100):
            h.add(v + 0.5)
        assert h.percentile(50) == pytest.approx(50.0)
        assert h.percentile(99) == pytest.approx(99.0)

    def test_rejects_negative_values(self):
        h = Histogram("lat", bin_width=1.0)
        with pytest.raises(ValueError):
            h.add(-1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Histogram("x", bin_width=0.0)
        h = Histogram("x", bin_width=1.0)
        with pytest.raises(ValueError):
            h.percentile(200)

    def test_empty_percentile(self):
        assert Histogram("x", bin_width=1.0).percentile(50) == 0.0


class TestStatRegistry:
    def test_latency_created_once(self):
        reg = StatRegistry()
        assert reg.latency("read") is reg.latency("read")

    def test_counters(self):
        reg = StatRegistry()
        reg.bump("drains")
        reg.bump("drains", 2.0)
        assert reg.counters["drains"] == 3.0

    def test_summary_merges(self):
        reg = StatRegistry()
        reg.latency("read").add(10.0)
        reg.bump("stalls")
        summary = reg.summary()
        assert summary["read"]["count"] == 1
        assert summary["stalls"] == 1.0

    def test_histogram_registry(self):
        reg = StatRegistry()
        h = reg.histogram("lat", 10.0)
        h.add(5.0)
        assert reg.histogram("lat", 10.0).total == 1
