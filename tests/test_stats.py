"""Tests for the streaming statistics accumulators."""

import math

import numpy as np
import pytest

from repro.sim.stats import Histogram, LatencyStat, StatRegistry


class TestLatencyStat:
    def test_mean_min_max(self):
        s = LatencyStat()
        for v in (10.0, 20.0, 30.0):
            s.add(v)
        assert s.mean == pytest.approx(20.0)
        assert s.min == 10.0
        assert s.max == 30.0
        assert s.count == 3
        assert s.total == 60.0

    def test_welford_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(100.0, size=500)
        s = LatencyStat()
        for v in data:
            s.add(float(v))
        assert s.mean == pytest.approx(data.mean())
        assert s.std == pytest.approx(data.std(ddof=1))

    def test_empty_stat(self):
        s = LatencyStat()
        assert s.mean == 0.0
        assert s.variance == 0.0
        assert s.summary()["count"] == 0

    def test_empty_min_max_are_finite(self):
        """Regression: .min/.max on an empty stat must not leak ±inf."""
        s = LatencyStat("empty")
        assert s.min == 0.0
        assert s.max == 0.0
        summary = s.summary()
        assert all(math.isfinite(v) for v in summary.values())
        assert summary["min"] == 0.0 and summary["max"] == 0.0

    def test_min_max_track_after_first_sample(self):
        s = LatencyStat()
        s.add(-3.0)
        assert s.min == -3.0 and s.max == -3.0
        s.add(7.0)
        assert s.min == -3.0 and s.max == 7.0

    def test_single_value_variance(self):
        s = LatencyStat()
        s.add(5.0)
        assert s.variance == 0.0


class TestHistogram:
    def test_binning(self):
        h = Histogram("lat", bin_width=10.0, num_bins=4)
        for v in (5, 15, 15, 45):
            h.add(v)
        assert h.counts[0] == 1
        assert h.counts[1] == 2
        assert h.counts[4] == 1  # overflow bin

    def test_percentile(self):
        h = Histogram("lat", bin_width=1.0, num_bins=100)
        for v in range(100):
            h.add(v + 0.5)
        assert h.percentile(50) == pytest.approx(50.0)
        assert h.percentile(99) == pytest.approx(99.0)

    def test_rejects_negative_values(self):
        h = Histogram("lat", bin_width=1.0)
        with pytest.raises(ValueError):
            h.add(-1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Histogram("x", bin_width=0.0)
        h = Histogram("x", bin_width=1.0)
        with pytest.raises(ValueError):
            h.percentile(200)

    def test_empty_percentile(self):
        assert Histogram("x", bin_width=1.0).percentile(50) == 0.0

    def test_empty_percentile_all_ranks(self):
        """Regression: every rank of an empty histogram is 0.0, no NaN."""
        h = Histogram("x", bin_width=1.0)
        for p in (0, 1, 50, 99, 100):
            assert h.percentile(p) == 0.0

    def test_empty_summary_is_well_defined(self):
        summary = Histogram("x", bin_width=1.0).summary()
        assert summary == {"total": 0, "p50": 0.0, "p99": 0.0}

    def test_p0_lands_on_first_occupied_bin(self):
        """Regression: p=0 used to report bin 0's edge even when the
        first samples sat far up the range."""
        h = Histogram("x", bin_width=10.0, num_bins=16)
        h.add(55.0)  # bin 5
        assert h.percentile(0) == pytest.approx(60.0)
        assert h.percentile(100) == pytest.approx(60.0)

    def test_summary_matches_percentiles(self):
        h = Histogram("lat", bin_width=1.0, num_bins=100)
        for v in range(100):
            h.add(v + 0.5)
        assert h.summary() == {
            "total": 100,
            "p50": h.percentile(50),
            "p99": h.percentile(99),
        }

    def test_overflow_percentile_is_infinite(self):
        """Regression: a rank landing in the overflow bin used to report
        the finite edge ``(num_bins + 1) * bin_width``, silently
        under-reporting the tail."""
        h = Histogram("lat", bin_width=10.0, num_bins=4)
        h.add(1e6)  # overflow
        assert h.percentile(50) == math.inf
        assert h.percentile(99) == math.inf
        # Mixed: median in range, tail in overflow.
        h2 = Histogram("lat", bin_width=10.0, num_bins=4)
        for _ in range(99):
            h2.add(5.0)
        h2.add(1e6)
        assert h2.percentile(50) == pytest.approx(10.0)
        assert h2.percentile(100) == math.inf

    def test_overflow_percentile_renders_as_beyond_edge(self):
        h = Histogram("lat", bin_width=10.0, num_bins=4)
        h.add(1e6)
        assert h.summary() == {"total": 1, "p50": ">40", "p99": ">40"}
        import json

        json.dumps(h.summary())  # stays serializable

    def test_last_real_bin_is_still_finite(self):
        h = Histogram("lat", bin_width=10.0, num_bins=4)
        h.add(35.0)  # last real bin, not overflow
        assert h.percentile(99) == pytest.approx(40.0)

    @pytest.mark.parametrize("bin_width", [0.1, 0.2, 0.3, 10.0, 1e-3])
    def test_float_edge_values_bin_half_open(self, bin_width):
        """Regression: ``value // bin_width`` rounds one bin off near the
        edges (0.3 // 0.1 == 2.0); binning must honor the half-open
        convention ``[i*w, (i+1)*w)`` for values on and near every edge."""
        num_bins = 64
        for i in range(num_bins):
            edge = i * bin_width
            for value in (edge, np.nextafter(edge, np.inf)):
                h = Histogram("x", bin_width=bin_width, num_bins=num_bins)
                h.add(value)
                assert h.counts[i] == 1, (
                    f"value {value!r} landed in bin "
                    f"{int(np.argmax(h.counts))}, want {i}"
                )
            below = np.nextafter(edge, -np.inf)
            if i and below >= (i - 1) * bin_width:
                h = Histogram("x", bin_width=bin_width, num_bins=num_bins)
                h.add(below)
                assert h.counts[i - 1] == 1


class TestStatRegistry:
    def test_latency_created_once(self):
        reg = StatRegistry()
        assert reg.latency("read") is reg.latency("read")

    def test_counters(self):
        reg = StatRegistry()
        reg.bump("drains")
        reg.bump("drains", 2.0)
        assert reg.counters["drains"] == 3.0

    def test_summary_merges(self):
        reg = StatRegistry()
        reg.latency("read").add(10.0)
        reg.bump("stalls")
        summary = reg.summary()
        assert summary["read"]["count"] == 1
        assert summary["stalls"] == 1.0

    def test_histogram_registry(self):
        reg = StatRegistry()
        h = reg.histogram("lat", 10.0)
        h.add(5.0)
        assert reg.histogram("lat", 10.0).total == 1

    def test_summary_includes_histograms(self):
        """Regression: histograms used to be silently dropped from
        summary(); a shared name keeps both under a .hist suffix."""
        reg = StatRegistry()
        reg.histogram("tail", 10.0).add(25.0)
        summary = reg.summary()
        assert summary["tail"] == {"total": 1, "p50": 30.0, "p99": 30.0}

        reg.latency("tail").add(25.0)
        summary = reg.summary()
        assert summary["tail"]["count"] == 1
        assert summary["tail.hist"]["total"] == 1
