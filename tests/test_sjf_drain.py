"""Tests for the SJF drain-order extension."""

import numpy as np
import pytest

from repro.config import ConfigError, MemCtrlConfig, default_config
from repro.experiments.fullsystem import run_fullsystem
from repro.memctrl.frfcfs import FRFCFSPolicy
from repro.memctrl.queues import BoundedQueue
from repro.memctrl.request import MemRequest, ReqKind
from repro.trace.record import OP_WRITE, RECORD_DTYPE, Trace
from repro.trace.synthetic import generate_trace


def write_req(i, line, bank=0):
    return MemRequest(req_id=i, kind=ReqKind.WRITE, core=0, line=line,
                      bank=bank, write_idx=i)


class TestPolicyLevel:
    def make(self, order, predictor):
        cfg = MemCtrlConfig(drain_order=order, opportunistic_drain=True)
        return FRFCFSPolicy(cfg, write_predictor=predictor)

    def test_sjf_picks_shortest(self):
        times = {0: 3000.0, 1: 500.0, 2: 1500.0}
        policy = self.make("sjf", lambda r: times[r.write_idx])
        rq, wq = BoundedQueue(8), BoundedQueue(8)
        for i in range(3):
            wq.push(write_req(i, line=8 * i))
        pick = policy.select(0, rq, wq)
        assert pick.write_idx == 1

    def test_fifo_picks_oldest(self):
        times = {0: 3000.0, 1: 500.0}
        policy = self.make("fifo", lambda r: times[r.write_idx])
        rq, wq = BoundedQueue(8), BoundedQueue(8)
        wq.push(write_req(0, line=0))
        wq.push(write_req(1, line=8))
        assert policy.select(0, rq, wq).write_idx == 0

    def test_sjf_without_predictor_falls_back(self):
        policy = self.make("sjf", None)
        rq, wq = BoundedQueue(8), BoundedQueue(8)
        wq.push(write_req(0, line=0))
        wq.push(write_req(1, line=8))
        assert policy.select(0, rq, wq).write_idx == 0

    def test_sjf_respects_banks(self):
        times = {0: 3000.0, 1: 1.0}
        policy = self.make("sjf", lambda r: times[r.write_idx])
        rq, wq = BoundedQueue(8), BoundedQueue(8)
        wq.push(write_req(0, line=0, bank=0))
        wq.push(write_req(1, line=1, bank=1))  # shortest, wrong bank
        assert policy.select(0, rq, wq).write_idx == 0

    def test_config_rejects_unknown_order(self):
        with pytest.raises(ConfigError):
            MemCtrlConfig(drain_order="lifo")


class TestSystemLevel:
    def _trace_with_varied_writes(self):
        """Writes with very different Tetris service times on one bank."""
        rng = np.random.default_rng(1)
        rows = [(0, OP_WRITE, 50, 8 * i) for i in range(40)]  # bank 0
        records = np.array(rows, dtype=RECORD_DTYPE)
        counts = np.zeros((40, 8, 2), dtype=np.uint8)
        heavy = rng.random(40) < 0.5
        counts[heavy] = 16   # heavy lines: every unit changes 32 cells
        counts[~heavy] = 1   # light lines: tiny writes
        return Trace("varied", 1, records, counts)

    def test_sjf_reduces_mean_write_latency(self):
        trace = self._trace_with_varied_writes()
        fifo_cfg = default_config().replace(
            memctrl=MemCtrlConfig(drain_order="fifo")
        )
        sjf_cfg = default_config().replace(
            memctrl=MemCtrlConfig(drain_order="sjf")
        )
        fifo = run_fullsystem(trace, "tetris", fifo_cfg)
        sjf = run_fullsystem(trace, "tetris", sjf_cfg)
        # Shortest-job-first minimizes mean waiting in a busy queue.
        assert sjf.mean_write_latency_ns <= fifo.mean_write_latency_ns
        # Conservation still holds.
        assert sjf.controller.write_latency.count == 40

    def test_sjf_preserves_totals(self):
        trace = generate_trace("dedup", requests_per_core=200, seed=4)
        sjf_cfg = default_config().replace(
            memctrl=MemCtrlConfig(drain_order="sjf")
        )
        res = run_fullsystem(trace, "tetris", sjf_cfg)
        n = res.controller.read_latency.count + res.controller.write_latency.count
        assert n == len(trace)
