"""Tests for subarray read-under-write (refs [13]/[15] extension)."""

import pytest

from repro.config import (
    ConfigError,
    MemCtrlConfig,
    PCMOrganization,
    default_config,
)
from repro.memctrl.controller import MemoryController
from repro.memctrl.request import MemRequest, ReqKind
from repro.sim.engine import Simulator


class FlatService:
    def read_ns(self, req):
        return 50.0

    def write_ns(self, req):
        return 3000.0


def make(sim, subarrays, **mc):
    defaults = dict(opportunistic_drain=True)
    defaults.update(mc)
    cfg = default_config().replace(
        organization=PCMOrganization(subarrays_per_bank=subarrays),
        memctrl=MemCtrlConfig(**defaults),
    )
    return MemoryController(sim, cfg, FlatService(), enable_forwarding=False)


def read_req(i, line, done=None):
    return MemRequest(req_id=i, kind=ReqKind.READ, core=0, line=line,
                      bank=line % 8, on_done=done)


def write_req(i, line):
    return MemRequest(req_id=i, kind=ReqKind.WRITE, core=0, line=line,
                      bank=line % 8, write_idx=0)


class TestConfig:
    def test_rejects_zero_subarrays(self):
        with pytest.raises(ConfigError):
            PCMOrganization(subarrays_per_bank=0)

    def test_default_is_one(self):
        assert default_config().organization.subarrays_per_bank == 1


class TestReadUnderWrite:
    def test_read_bypasses_write_in_other_subarray(self):
        sim = Simulator()
        ctrl = make(sim, subarrays=4)
        done = []
        ctrl.submit(write_req(1, 0))      # bank 0, subarray (0//8)%4 = 0
        sim.run(until=100.0)
        ctrl.submit(read_req(2, 8, done.append))  # bank 0, subarray 1
        sim.run()
        assert ctrl.stats.subarray_reads == 1
        assert done[0].finish_ns < 1000.0  # did not wait for the write

    def test_same_subarray_read_waits(self):
        sim = Simulator()
        ctrl = make(sim, subarrays=4)
        done = []
        ctrl.submit(write_req(1, 0))       # subarray 0
        sim.run(until=100.0)
        ctrl.submit(read_req(2, 256, done.append))  # (256//8)%4 = 0: same
        sim.run()
        assert ctrl.stats.subarray_reads == 0
        assert done[0].start_ns >= 3000.0

    def test_disabled_with_one_subarray(self):
        sim = Simulator()
        ctrl = make(sim, subarrays=1)
        done = []
        ctrl.submit(write_req(1, 0))
        sim.run(until=100.0)
        ctrl.submit(read_req(2, 8, done.append))
        sim.run()
        assert ctrl.stats.subarray_reads == 0
        assert done[0].start_ns >= 3000.0

    def test_single_read_port(self):
        """Two bypass-eligible reads serialize on the read port."""
        sim = Simulator()
        ctrl = make(sim, subarrays=4)
        done = []
        ctrl.submit(write_req(1, 0))
        sim.run(until=100.0)
        ctrl.submit(read_req(2, 8, done.append))
        ctrl.submit(read_req(3, 16, done.append))
        sim.run()
        assert ctrl.stats.subarray_reads == 2
        finishes = sorted(r.finish_ns for r in done)
        assert finishes[1] >= finishes[0] + 50.0

    def test_conservation_with_bypass(self):
        sim = Simulator()
        ctrl = make(sim, subarrays=2)
        n_done = []
        ctrl.submit(write_req(1, 0))
        sim.run(until=10.0)
        for i in range(4):
            ctrl.submit(read_req(10 + i, 8 * i, n_done.append))
        ctrl.flush_writes()
        sim.run()
        assert ctrl.idle
        assert len(n_done) == 4
        assert ctrl.stats.write_latency.count == 1

    def test_pausing_defers_to_bypass(self):
        """With both features on, a cross-subarray read bypasses instead
        of pausing the write."""
        sim = Simulator()
        ctrl = make(sim, subarrays=4, write_pausing=True)
        done = []
        ctrl.submit(write_req(1, 0))
        sim.run(until=100.0)
        ctrl.submit(read_req(2, 8, done.append))   # other subarray
        sim.run()
        assert ctrl.stats.write_pauses == 0
        assert ctrl.stats.subarray_reads == 1

    def test_pausing_still_used_same_subarray(self):
        sim = Simulator()
        ctrl = make(sim, subarrays=4, write_pausing=True)
        done = []
        ctrl.submit(write_req(1, 0))
        sim.run(until=100.0)
        ctrl.submit(read_req(2, 256, done.append))  # same subarray
        sim.run()
        assert ctrl.stats.write_pauses == 1
