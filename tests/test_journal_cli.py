"""Journal maintenance: CLI stats/compact, torn lines, and stale salts.

Satellites (a) and (b) of ISSUE 8:

* ``tetris-write journal stats|compact`` reports and repairs a journal
  whose final line was torn by a crash;
* ``SweepEngine.run(resume=True)`` against a journal written by a
  different code version fails fast with a "stale journal" error
  instead of silently re-executing everything;
* ``journal compact --prune-stale`` removes the stale-salt records so
  the journal is usable again.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.parallel import StaleJournalError, SweepEngine, SweepJournal
from repro.parallel.resultcache import code_salt

SCHEMES = ("dcw",)
WORKLOADS = ("dedup", "vips")
REQUESTS = 60


def build_journal(path) -> SweepJournal:
    eng = SweepEngine(
        requests_per_core=REQUESTS, workers=1, cache=False, journal=path
    )
    eng.run(SCHEMES, WORKLOADS).raise_errors()
    return SweepJournal(path)


def tear_last_line(path) -> None:
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])


# ----------------------------------------------------------------------
# stats + compact on a torn journal.
# ----------------------------------------------------------------------
def test_journal_stats_reports_a_torn_final_line(tmp_path, capsys):
    path = tmp_path / "j.jsonl"
    build_journal(path)
    tear_last_line(path)

    assert main(["journal", "stats", "--journal", str(path)]) == 0
    out = capsys.readouterr().out
    assert "corrupt lines" in out
    assert "journal compact" in out  # repair hint
    assert code_salt()[:8] in out    # the record salt is surfaced


def test_journal_compact_repairs_a_torn_final_line(tmp_path, capsys):
    path = tmp_path / "j.jsonl"
    n_records = len(build_journal(path).load())
    tear_last_line(path)
    assert SweepJournal(path).corrupt_lines or len(SweepJournal(path).load()) < n_records

    assert main(["journal", "compact", "--journal", str(path)]) == 0
    assert "compacted" in capsys.readouterr().out
    repaired = SweepJournal(path)
    rows = repaired.load()
    assert repaired.corrupt_lines == 0
    assert len(rows) == n_records - 1  # the torn record is gone, rest intact

    # The compacted journal still resumes: only the torn cell re-runs.
    res = SweepEngine(
        requests_per_core=REQUESTS, workers=1, cache=False, journal=path
    ).run(SCHEMES, WORKLOADS, resume=True)
    res.raise_errors()
    assert res.stats.resumed == n_records - 1
    assert res.stats.executed == 1


# ----------------------------------------------------------------------
# Stale-journal detection on resume.
# ----------------------------------------------------------------------
def test_resume_with_stale_journal_fails_with_actionable_error(tmp_path):
    path = tmp_path / "stale.jsonl"
    journal = SweepJournal(path)
    # A journal written by a different code version: every key was
    # derived from a different salt, so nothing the current planner
    # computes can match.
    journal.append("old-key-1", {"scheme": "dcw"}, meta={"salt": "f" * 16})
    journal.append("old-key-2", {"scheme": "dcw"}, meta={"salt": "f" * 16})

    eng = SweepEngine(
        requests_per_core=REQUESTS, workers=1, cache=False, journal=path
    )
    with pytest.raises(
        StaleJournalError,
        match=r"stale journal \(code changed\); re-run without --resume "
        r"or compact",
    ) as excinfo:
        eng.run(SCHEMES, WORKLOADS, resume=True)
    assert "f" * 16 in str(excinfo.value)      # what the journal holds
    assert code_salt() in str(excinfo.value)   # what the code hashes to


def test_resume_tolerates_stale_records_when_current_ones_match(tmp_path):
    path = tmp_path / "mixed.jsonl"
    n_records = len(build_journal(path).load())
    SweepJournal(path).append(
        "leftover-old-key", {"scheme": "dcw"}, meta={"salt": "f" * 16}
    )

    res = SweepEngine(
        requests_per_core=REQUESTS, workers=1, cache=False, journal=path
    ).run(SCHEMES, WORKLOADS, resume=True)
    res.raise_errors()
    assert res.stats.resumed == n_records  # current-salt records all match
    assert res.stats.executed == 0


def test_journal_stats_flags_stale_salts(tmp_path, capsys):
    path = tmp_path / "mixed.jsonl"
    build_journal(path)
    SweepJournal(path).append(
        "leftover-old-key", {"scheme": "dcw"}, meta={"salt": "f" * 16}
    )

    assert main(["journal", "stats", "--journal", str(path)]) == 0
    out = capsys.readouterr().out
    assert "(STALE)" in out
    assert "(current code)" in out
    assert "--prune-stale" in out  # remediation hint


def test_journal_compact_prune_stale_restores_resumability(tmp_path, capsys):
    path = tmp_path / "mixed.jsonl"
    n_records = len(build_journal(path).load())
    SweepJournal(path).append(
        "leftover-old-key", {"scheme": "dcw"}, meta={"salt": "f" * 16}
    )

    assert main(
        ["journal", "compact", "--journal", str(path), "--prune-stale"]
    ) == 0
    assert "pruned" in capsys.readouterr().out
    repaired = SweepJournal(path)
    rows = repaired.load()
    assert len(rows) == n_records
    assert "leftover-old-key" not in rows
    assert repaired.salts == {code_salt()}

    # The advertised remedy works: resume is clean after pruning.
    res = SweepEngine(
        requests_per_core=REQUESTS, workers=1, cache=False, journal=path
    ).run(SCHEMES, WORKLOADS, resume=True)
    res.raise_errors()
    assert res.stats.resumed == n_records
    assert res.stats.executed == 0


def test_journal_compact_keeps_unstamped_records(tmp_path):
    # Records journaled before salt stamping existed (or by hand) must
    # survive --prune-stale: only records *known* to be from another
    # code version are dropped.
    path = tmp_path / "legacy.jsonl"
    journal = SweepJournal(path)
    journal.append("legacy-key", {"scheme": "dcw"})
    journal.append("old-key", {"scheme": "dcw"}, meta={"salt": "f" * 16})
    journal.append("new-key", {"scheme": "dcw"}, meta={"salt": code_salt()})

    dropped = SweepJournal(path).compact(keep_salts={code_salt()})
    assert dropped == 1
    rows = SweepJournal(path).load()
    assert set(rows) == {"legacy-key", "new-key"}


def test_journal_roundtrip_preserves_meta_and_salts(tmp_path):
    path = tmp_path / "meta.jsonl"
    journal = SweepJournal(path)
    journal.append("k1", {"x": 1}, meta={"salt": "aaaa", "scheme": "dcw"})
    journal.append("k2", {"x": 2}, meta={"salt": "bbbb"})

    reloaded = SweepJournal(path)
    reloaded.load()
    assert reloaded.salts == {"aaaa", "bbbb"}
    assert reloaded.meta["k1"]["scheme"] == "dcw"

    # compact() preserves the stamps (they survive as-written).
    reloaded.compact()
    again = SweepJournal(path)
    again.load()
    assert again.salts == {"aaaa", "bbbb"}
    raw = [json.loads(line) for line in path.read_text().splitlines()]
    assert all("meta" in rec for rec in raw)
