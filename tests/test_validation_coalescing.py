"""Tests for run validation and write coalescing."""

import numpy as np
import pytest

from repro.analysis.validation import ValidationError, validate_system_result
from repro.config import MemCtrlConfig, default_config
from repro.experiments.fullsystem import run_fullsystem
from repro.trace.record import OP_READ, OP_WRITE, RECORD_DTYPE, Trace
from repro.trace.synthetic import generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace("ferret", requests_per_core=300, seed=21)


class TestValidation:
    @pytest.mark.parametrize("scheme", ["dcw", "tetris"])
    def test_valid_runs_pass(self, trace, scheme):
        cfg = default_config()
        res = run_fullsystem(trace, scheme, cfg)
        validate_system_result(res, trace, cfg)  # no exception

    def test_detects_request_loss(self, trace):
        cfg = default_config()
        res = run_fullsystem(trace, "dcw", cfg)
        # Tamper: pretend one read vanished.
        res.controller.completed_reads -= 1
        with pytest.raises(ValidationError):
            validate_system_result(res, trace, cfg)

    def test_detects_instruction_mismatch(self, trace):
        cfg = default_config()
        res = run_fullsystem(trace, "dcw", cfg)
        res.total_instructions += 7  # tamper
        with pytest.raises(ValidationError):
            validate_system_result(res, trace, cfg)


def make_write_trace(lines, gap=10):
    rows = [(0, OP_WRITE, gap, ln) for ln in lines]
    records = np.array(rows, dtype=RECORD_DTYPE)
    counts = np.full((len(lines), 8, 2), 2, dtype=np.uint8)
    return Trace("coal", 1, records, counts)


class TestCoalescing:
    def cfg(self, coalescing):
        return default_config().replace(
            memctrl=MemCtrlConfig(write_coalescing=coalescing)
        )

    def test_same_line_writes_absorb(self):
        trace = make_write_trace([5, 5, 5, 5])
        res = run_fullsystem(trace, "dcw", self.cfg(True))
        assert res.controller.coalesced_writes == 3
        # All four writes completed (conservation), three instantly.
        assert res.controller.write_latency.count == 4

    def test_distinct_lines_do_not_absorb(self):
        trace = make_write_trace([1, 2, 3, 4])
        res = run_fullsystem(trace, "dcw", self.cfg(True))
        assert res.controller.coalesced_writes == 0

    def test_disabled_by_default(self):
        trace = make_write_trace([5, 5, 5, 5])
        res = run_fullsystem(trace, "dcw", default_config())
        assert res.controller.coalesced_writes == 0

    def test_coalescing_reduces_bank_work(self):
        lines = [7, 7, 7, 7, 7, 7, 15, 15, 15, 15]
        trace = make_write_trace(lines)
        plain = run_fullsystem(trace, "dcw", self.cfg(False))
        merged = run_fullsystem(trace, "dcw", self.cfg(True))
        plain_busy = sum(plain.controller.bank_busy_ns.values())
        merged_busy = sum(merged.controller.bank_busy_ns.values())
        assert merged_busy < plain_busy

    def test_validation_passes_with_coalescing(self):
        trace = make_write_trace([3, 3, 11, 11, 19])
        cfg = self.cfg(True)
        res = run_fullsystem(trace, "dcw", cfg)
        validate_system_result(res, trace, cfg)
