"""Tests for the flip_policy scheme option and the adaptive-analysis
precompute path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.read_stage import cost_aware_flip
from repro.experiments.fullsystem import precompute_write_service, run_fullsystem
from repro.pcm.state import LineState
from repro.schemes import get_scheme
from repro.trace.synthetic import generate_trace

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestFlipPolicy:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            get_scheme("flip_n_write", flip_policy="entropy")

    def test_cost_policy_commits_logical_data(self, rng, line8):
        scheme = get_scheme("flip_n_write", flip_policy="cost")
        state = LineState.from_logical(line8.copy())
        new = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
        scheme.write(state, new)
        assert np.array_equal(state.logical, new)

    @settings(max_examples=60, deadline=None)
    @given(u64, u64)
    def test_bounded_cost_flip_respects_count_bound(self, old, new):
        """With max_programs = N/2 the chosen encoding never programs
        more than half the cells — FNW's power guarantee."""
        rs = cost_aware_flip(
            np.array([old], dtype=np.uint64),
            np.array([False]),
            np.array([new], dtype=np.uint64),
            max_programs=32,
        )
        assert rs.total_bit_writes <= 32

    def test_cost_policy_never_costs_more_energy(self, rng, line8):
        count_scheme = get_scheme("flip_n_write")
        cost_scheme = get_scheme("flip_n_write", flip_policy="cost")
        total_count = total_cost = 0.0
        for _ in range(40):
            new = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
            a = count_scheme.write(LineState.from_logical(line8.copy()), new)
            b = cost_scheme.write(LineState.from_logical(line8.copy()), new)
            total_count += a.energy
            total_cost += b.energy
        assert total_cost <= total_count + 1e-6


class TestAdaptivePrecompute:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace("bodytrack", requests_per_core=250, seed=16)

    def test_units_unchanged(self, trace):
        plain = precompute_write_service(trace, "tetris")
        fast = precompute_write_service(trace, "tetris", adaptive_analysis=True)
        assert np.array_equal(plain.units, fast.units)

    def test_service_strictly_cheaper_on_trivial_writes(self, trace):
        plain = precompute_write_service(trace, "tetris")
        fast = precompute_write_service(trace, "tetris", adaptive_analysis=True)
        assert (fast.service_ns <= plain.service_ns + 1e-9).all()
        # Observation 1: most writes take the fast path.
        saved = plain.service_ns - fast.service_ns
        assert (saved > 0).mean() > 0.5

    def test_system_level_effect(self, trace):
        plain_table = precompute_write_service(trace, "tetris")
        fast_table = precompute_write_service(
            trace, "tetris", adaptive_analysis=True
        )
        plain = run_fullsystem(trace, "tetris", table=plain_table)
        fast = run_fullsystem(trace, "tetris", table=fast_table)
        assert fast.runtime_ns <= plain.runtime_ns

    def test_matches_scalar_scheme_fast_path(self, trace):
        """The vectorized trivial-schedule condition agrees with the
        scalar scheme's detector on realized content."""
        from repro.pcm.state import MemoryImage
        from repro.trace.content import realize_payload

        scheme = get_scheme("tetris", adaptive_analysis=True)
        table = precompute_write_service(trace, "tetris", adaptive_analysis=True)
        image = MemoryImage(seed=trace.seed)
        lines = trace.records["line"][trace.records["op"] == 1]
        for w in range(60):
            state = image.line(int(lines[w]))
            rng = np.random.default_rng(np.random.SeedSequence([trace.seed, w]))
            new = realize_payload(rng, state.logical, trace.write_counts[w])
            out = scheme.write(state, new)
            expected_fast = table.service_ns[w] < 50.0 + 50.0 + out.units * 430.0
            assert (out.analysis_ns == pytest.approx(10.0)) == bool(expected_fast)
