"""The whole stack must hold at 128 B / 256 B cache lines (§I motivation)."""

import numpy as np
import pytest

from repro.config import default_config
from repro.core.batch import pack_batch
from repro.experiments.fullsystem import run_fullsystem
from repro.pcm.state import LineState
from repro.schemes import get_scheme
from repro.trace.synthetic import generate_trace

LINE_SIZES = (128, 256)


@pytest.mark.parametrize("line_bytes", LINE_SIZES)
class TestBigLines:
    def units(self, line_bytes):
        return line_bytes * 8 // 64

    def cfg(self, line_bytes):
        return default_config().replace(cache_line_bytes=line_bytes)

    def test_equations_scale(self, line_bytes):
        cfg = self.cfg(line_bytes)
        nm = cfg.units_per_line
        assert nm == line_bytes // 8
        three = get_scheme("three_stage", cfg)
        assert three.worst_case_units() == pytest.approx(
            nm / 16 + nm / 4
        )

    def test_scheme_roundtrip(self, line_bytes, rng):
        u = self.units(line_bytes)
        old = rng.integers(0, np.iinfo(np.uint64).max, size=u, dtype=np.uint64)
        new = old ^ rng.integers(0, 1 << 14, size=u, dtype=np.uint64)
        for name in ("dcw", "three_stage", "tetris"):
            scheme = get_scheme(name, self.cfg(line_bytes))
            state = LineState.from_logical(old.copy())
            out = scheme.write(state, new)
            assert np.array_equal(state.logical, new), name
            assert out.units > 0

    def test_batch_packer_scales(self, line_bytes, rng):
        u = self.units(line_bytes)
        n_set = rng.poisson(6.7, size=(50, u))
        n_reset = rng.poisson(2.9, size=(50, u))
        packed = pack_batch(n_set, n_reset, power_budget=128.0)
        assert packed.result.shape == (50,)
        # More units per line -> more write units, sublinearly.
        assert packed.service_units().mean() < u  # far below worst case

    def test_fullsystem_runs(self, line_bytes, rng):
        cfg = self.cfg(line_bytes)
        trace = generate_trace(
            "dedup", requests_per_core=100, seed=2,
            units_per_line=self.units(line_bytes),
        )
        res = run_fullsystem(trace, "tetris", cfg)
        assert res.controller.completed == len(trace)

    def test_tetris_advantage_grows(self, line_bytes, rng):
        """The §I claim: bigger lines widen Tetris's relative win."""
        u = self.units(line_bytes)
        n_set = rng.poisson(6.7, size=(200, u))
        n_reset = rng.poisson(2.9, size=(200, u))
        tetris_units = pack_batch(
            n_set, n_reset, power_budget=128.0
        ).service_units().mean()
        gain = (line_bytes // 8) / tetris_units
        baseline_gain_64 = 8 / 1.3  # the 64 B regime's ~6x
        assert gain > baseline_gain_64
