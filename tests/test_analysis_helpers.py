"""Tests for metrics, report formatting and the timing diagram."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    arithmetic_mean,
    geometric_mean,
    improvement_factor,
    normalize_to_baseline,
    reduction_percent,
)
from repro.analysis.report import ascii_bar_chart, format_table
from repro.analysis.timing_diagram import (
    render_tetris_schedule,
    render_timing_diagram,
    scheme_timeline,
)
from repro.core.analysis import analyze


class TestMetrics:
    def test_reduction_percent(self):
        assert reduction_percent(35.0, 100.0) == pytest.approx(65.0)
        assert reduction_percent(100.0, 0.0) == 0.0

    def test_improvement_factor(self):
        assert improvement_factor(2.0, 1.0) == 2.0
        assert improvement_factor(2.0, 0.0) == 0.0

    def test_normalize(self):
        vals = {"a": 2.0, "b": 4.0}
        norm = normalize_to_baseline(vals, "a")
        assert norm == {"a": 1.0, "b": 2.0}
        with pytest.raises(ZeroDivisionError):
            normalize_to_baseline({"a": 0.0}, "a")

    def test_means(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestReport:
    def test_table_alignment(self):
        out = format_table(["name", "x"], [["aa", 1.5], ["b", 2.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.500" in out and "2.250" in out

    def test_table_title(self):
        out = format_table(["h"], [["v"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_bar_chart(self):
        out = ascii_bar_chart({"x": 1.0, "y": 0.5}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_empty(self):
        assert ascii_bar_chart({}, title="t") == "t"

    def test_bar_chart_zero_peak(self):
        out = ascii_bar_chart({"x": 0.0})
        assert "#" not in out


class TestTimingDiagram:
    def test_fig4_timeline(self):
        tl = scheme_timeline(
            [8, 7, 7, 6, 6, 6, 5, 3], [1, 1, 1, 2, 3, 2, 2, 5],
            power_budget=32.0,
        )
        assert tl.conventional == 8.0
        assert tl.flip_n_write == 4.0
        assert tl.two_stage == pytest.approx(3.0)
        assert tl.three_stage == pytest.approx(2.5)
        # T1 strictly fastest, as in Fig 4.
        assert tl.tetris < tl.three_stage

    def test_render_contains_all_schemes(self):
        out = render_timing_diagram([4] * 8, [2] * 8)
        for name in ("conventional", "flip_n_write", "two_stage",
                     "three_stage", "tetris"):
            assert name in out

    def test_schedule_grid_dimensions(self):
        sched = analyze([4, 0, 2, 0], [1, 0, 0, 0], power_budget=32.0)
        out = render_tetris_schedule(sched, 4)
        rows = [l for l in out.splitlines() if l.strip().startswith("u") and ":=" not in l and l.strip() != "unit"]
        rows = [l for l in rows if not l.startswith("unit")]
        assert len(rows) == 4

    def test_grid_marks_bursts(self):
        sched = analyze([4], [1], power_budget=8.0)
        out = render_tetris_schedule(sched, 1)
        assert "1" in out
        assert ("0" in out) or ("*" in out)
