"""Tests for the trace substrate: workloads, content model, generator, IO."""

import numpy as np
import pytest

from repro.core.read_stage import read_stage
from repro.trace.content import ContentModel, realize_payload
from repro.trace.record import OP_READ, OP_WRITE, RECORD_DTYPE, Trace
from repro.trace.synthetic import SyntheticTraceGenerator, generate_trace
from repro.trace.workloads import (
    PARSEC_WORKLOADS,
    WORKLOAD_NAMES,
    WorkloadProfile,
    get_workload,
    shared_fraction,
)


class TestWorkloadTable:
    def test_eight_workloads(self):
        assert len(PARSEC_WORKLOADS) == 8

    def test_table3_rates(self):
        """RPKI/WPKI copied verbatim from Table III."""
        expected = {
            "blackscholes": (0.04, 0.02),
            "bodytrack": (0.72, 0.24),
            "canneal": (2.76, 0.19),
            "dedup": (0.82, 0.49),
            "ferret": (1.67, 0.95),
            "freqmine": (0.62, 0.25),
            "swaptions": (0.04, 0.02),
            "vips": (2.56, 1.56),
        }
        for name, (rpki, wpki) in expected.items():
            p = get_workload(name)
            assert p.rpki == rpki and p.wpki == wpki

    def test_fig3_anchors(self):
        """The text pins blackscholes ~2 and vips ~19 total bit-writes."""
        bs = get_workload("blackscholes")
        vips = get_workload("vips")
        assert 1.5 <= bs.set_per_unit + bs.reset_per_unit <= 2.5
        assert 17 <= vips.set_per_unit + vips.reset_per_unit <= 21

    def test_set_dominance_pattern(self):
        """Most workloads SET-dominant; ferret/vips near fifty-fifty."""
        for name in WORKLOAD_NAMES:
            p = get_workload(name)
            if name in ("ferret", "vips"):
                assert 0.45 <= p.set_dominance <= 0.60
            else:
                assert p.set_dominance > 0.65

    def test_mean_gap(self):
        p = get_workload("blackscholes")
        assert p.mean_gap_instructions == pytest.approx(1000 / 0.06)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_sharing_fraction_levels(self):
        assert shared_fraction(get_workload("blackscholes")) < shared_fraction(
            get_workload("dedup")
        )

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", "d", "low", "low", rpki=-1, wpki=0,
                            set_per_unit=1, reset_per_unit=1)
        with pytest.raises(ValueError):
            WorkloadProfile("x", "d", "low", "low", rpki=1, wpki=1,
                            set_per_unit=20, reset_per_unit=20)


class TestContentModel:
    def test_counts_shape_and_dtype(self, rng):
        cm = ContentModel(get_workload("dedup"))
        counts = cm.draw_counts(rng, 100, 8)
        assert counts.shape == (100, 8, 2)
        assert counts.dtype == np.uint8

    def test_means_match_profile(self, rng):
        prof = get_workload("bodytrack")
        cm = ContentModel(prof, burstiness=0.0)
        counts = cm.draw_counts(rng, 4000, 8)
        assert counts[..., 0].mean() == pytest.approx(prof.set_per_unit, rel=0.08)
        assert counts[..., 1].mean() == pytest.approx(prof.reset_per_unit, rel=0.12)

    def test_flip_bound_respected(self, rng):
        cm = ContentModel(get_workload("vips"), burstiness=0.5)
        counts = cm.draw_counts(rng, 2000, 8).astype(int)
        assert (counts.sum(axis=-1) <= 32).all()

    def test_burstiness_preserves_mean(self, rng):
        prof = get_workload("freqmine")
        flat = ContentModel(prof, burstiness=0.0).draw_counts(rng, 5000, 8)
        bursty = ContentModel(prof, burstiness=0.3).draw_counts(
            np.random.default_rng(7), 5000, 8
        )
        assert flat[..., 0].mean() == pytest.approx(bursty[..., 0].mean(), rel=0.1)


class TestRealizePayload:
    def test_exact_counts_against_balanced_old(self, rng, line8):
        counts = np.tile([3, 2], (8, 1))
        new = realize_payload(rng, line8, counts)
        rs = read_stage(line8, np.zeros(8, bool), new)
        assert (rs.n_set == 3).all()
        assert (rs.n_reset == 2).all()

    def test_truncates_when_polarity_exhausted(self, rng):
        old = np.array([(1 << 64) - 1], dtype=np.uint64)  # all ones
        new = realize_payload(rng, old, np.array([[5, 2]]))
        # No zeros available: SETs truncated to 0, RESETs applied.
        assert int(np.bitwise_count(old ^ new)[0]) == 2

    def test_shape_check(self, rng, line8):
        with pytest.raises(ValueError):
            realize_payload(rng, line8, np.zeros((3, 2)))

    def test_deterministic(self, line8):
        counts = np.tile([2, 1], (8, 1))
        a = realize_payload(np.random.default_rng(5), line8, counts)
        b = realize_payload(np.random.default_rng(5), line8, counts)
        assert np.array_equal(a, b)


class TestGenerator:
    def test_rpki_wpki_calibration(self):
        for name in ("canneal", "ferret"):
            t = generate_trace(name, requests_per_core=3000)
            rpki, wpki = t.measured_rpki_wpki()
            p = get_workload(name)
            assert rpki == pytest.approx(p.rpki, rel=0.1)
            assert wpki == pytest.approx(p.wpki, rel=0.15)

    def test_bit_profile_calibration(self):
        t = generate_trace("bodytrack", requests_per_core=3000)
        mean_set, mean_reset = t.mean_bit_profile()
        p = get_workload("bodytrack")
        assert mean_set == pytest.approx(p.set_per_unit, rel=0.12)
        assert mean_reset == pytest.approx(p.reset_per_unit, rel=0.15)

    def test_deterministic_for_seed(self):
        a = generate_trace("dedup", 200, seed=42)
        b = generate_trace("dedup", 200, seed=42)
        assert np.array_equal(a.records, b.records)
        assert np.array_equal(a.write_counts, b.write_counts)

    def test_seed_changes_trace(self):
        a = generate_trace("dedup", 200, seed=1)
        b = generate_trace("dedup", 200, seed=2)
        assert not np.array_equal(a.records, b.records)

    def test_all_cores_present(self):
        t = generate_trace("ferret", 500)
        assert set(np.unique(t.records["core"])) == {0, 1, 2, 3}

    def test_per_core_request_count(self):
        t = generate_trace("vips", 500)
        for c in range(4):
            assert len(t.per_core(c)) == 500

    def test_lines_spread_across_banks(self):
        t = generate_trace("dedup", 2000)
        banks = np.unique(t.records["line"] % 8)
        assert banks.size == 8

    def test_write_counts_align_with_writes(self):
        t = generate_trace("ferret", 300)
        assert t.write_counts.shape[0] == t.n_writes

    def test_instructions_per_core(self):
        t = generate_trace("swaptions", 100)
        per_core = t.instructions_per_core()
        assert len(per_core) == 4
        assert all(v > 0 for v in per_core.values())


class TestTraceValidation:
    def test_bad_dtype_rejected(self):
        with pytest.raises(TypeError):
            Trace("x", 0, np.zeros(3), np.zeros((0, 8, 2), np.uint8))

    def test_count_shape_mismatch_rejected(self):
        records = np.array([(0, OP_WRITE, 1, 0)], dtype=RECORD_DTYPE)
        with pytest.raises(ValueError):
            Trace("x", 0, records, np.zeros((2, 8, 2), np.uint8))

    def test_write_indices(self):
        records = np.array(
            [(0, OP_READ, 1, 0), (0, OP_WRITE, 1, 1), (0, OP_WRITE, 1, 2)],
            dtype=RECORD_DTYPE,
        )
        t = Trace("x", 0, records, np.zeros((2, 8, 2), np.uint8))
        assert t.write_indices.tolist() == [1, 2]
        assert t.n_reads == 1 and t.n_writes == 2
