"""Tests for the generalized scheduler and the MLC extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import analyze
from repro.core.generalized import BurstClass, GeneralizedScheduler
from repro.pcm.mlc import MLC_LEVEL_CLASSES, MLCModel, mlc_level_counts

WRITE1 = BurstClass("write1", 8, 1.0)
WRITE0 = BurstClass("write0", 1, 2.0)
counts8 = st.lists(st.integers(min_value=0, max_value=32), min_size=8, max_size=8)


class TestBurstClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurstClass("x", 0, 1.0)
        with pytest.raises(ValueError):
            BurstClass("x", 1, 0.0)


class TestGeneralizedScheduler:
    def test_empty_schedule(self):
        sched = GeneralizedScheduler(128.0, 53.75).schedule({WRITE1: [0] * 8})
        assert sched.total_subslots == 0
        assert sched.completion_ns() == 0.0

    def test_single_burst(self):
        sched = GeneralizedScheduler(128.0, 53.75).schedule({WRITE1: [5]})
        assert sched.total_subslots == 8
        assert sched.completion_ns() == pytest.approx(8 * 53.75)

    def test_short_bursts_fill_gaps(self):
        """Long write-1s saturate 100/128; short write-0s (current 56)
        cannot share, but ones drawing <= 28 hide completely."""
        sched = GeneralizedScheduler(128.0, 53.75).schedule(
            {WRITE1: [100], WRITE0: [14]}  # write-0 current 28
        )
        assert sched.total_subslots == 8  # fully hidden

    def test_oversized_burst_split(self):
        sched = GeneralizedScheduler(32.0, 53.75).schedule({WRITE1: [40]})
        chunks = [b for b in sched.bursts if b.burst_class is WRITE1]
        assert len(chunks) == 2
        assert sum(b.n_cells for b in chunks) == 40

    def test_budget_below_one_cell_raises(self):
        with pytest.raises(ValueError):
            GeneralizedScheduler(1.0, 53.75).schedule({WRITE0: [1]})

    def test_validation_of_constructor(self):
        with pytest.raises(ValueError):
            GeneralizedScheduler(0.0, 53.75)
        with pytest.raises(ValueError):
            GeneralizedScheduler(128.0, 0.0)

    @settings(max_examples=100, deadline=None)
    @given(counts8, counts8)
    def test_budget_never_exceeded(self, n1, n0):
        sched = GeneralizedScheduler(128.0, 53.75).schedule(
            {WRITE1: n1, WRITE0: n0}
        )
        occ = sched.occupancy()
        assert occ.size == 0 or occ.max() <= 128.0 + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(counts8, counts8)
    def test_all_cells_scheduled(self, n1, n0):
        sched = GeneralizedScheduler(128.0, 53.75).schedule(
            {WRITE1: n1, WRITE0: n0}
        )
        placed1 = sum(b.n_cells for b in sched.bursts if b.burst_class is WRITE1)
        placed0 = sum(b.n_cells for b in sched.bursts if b.burst_class is WRITE0)
        assert placed1 == sum(n1)
        assert placed0 == sum(n0)

    @settings(max_examples=100, deadline=None)
    @given(counts8, counts8)
    def test_never_slower_than_algorithm2(self, n1, n0):
        """Dropping the write-unit alignment can only help: the
        unaligned earliest-fit completion is bounded by Equation 5."""
        aligned = analyze(n1, n0, K=8, L=2.0, power_budget=128.0)
        sched = GeneralizedScheduler(128.0, 430.0 / 8).schedule(
            {WRITE1: n1, WRITE0: n0}
        )
        assert sched.completion_ns() <= aligned.service_time_ns(430.0) + 1e-6


class TestMLCLevelCounts:
    def test_no_change_no_programs(self):
        u = np.array([0xDEAD_BEEF_CAFE_F00D], dtype=np.uint64)
        assert mlc_level_counts(u, u).sum() == 0

    def test_single_cell_transition(self):
        old = np.array([0b00], dtype=np.uint64)
        new = np.array([0b11], dtype=np.uint64)  # cell 0: level 0 -> 3
        counts = mlc_level_counts(old, new)
        assert counts[0].tolist() == [0, 0, 0, 1]

    def test_each_level_counted(self):
        # Cells 0..3 target levels 0..3; old value makes all change.
        new = np.uint64(0b11_10_01_00)
        old = np.uint64(0b00_01_10_11)
        counts = mlc_level_counts(np.array([old]), np.array([new]))
        assert counts[0].tolist() == [1, 1, 1, 1]

    def test_unchanged_cells_excluded(self):
        old = np.uint64(0b11_00)
        new = np.uint64(0b11_01)   # only cell 0 changes (level 1)
        counts = mlc_level_counts(np.array([old]), np.array([new]))
        assert counts[0].tolist() == [0, 1, 0, 0]

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    def test_total_equals_changed_cells(self, old, new):
        counts = mlc_level_counts(
            np.array([old], dtype=np.uint64), np.array([new], dtype=np.uint64)
        )
        changed = sum(
            1 for c in range(32)
            if (old >> (2 * c)) & 3 != (new >> (2 * c)) & 3
        )
        assert int(counts.sum()) == changed

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mlc_level_counts(np.zeros(2, np.uint64), np.zeros(3, np.uint64))


class TestMLCModel:
    def test_needs_four_classes(self):
        with pytest.raises(ValueError):
            MLCModel(level_classes=MLC_LEVEL_CLASSES[:2])

    def test_tetris_beats_serial(self, rng):
        old = rng.integers(0, 1 << 63, size=8, dtype=np.uint64)
        new = old ^ rng.integers(0, 1 << 20, size=8, dtype=np.uint64)
        model = MLCModel()
        assert model.tetris_ns(old, new) <= model.serial_ns(old, new)

    def test_silent_write_is_free(self, line8):
        model = MLCModel()
        assert model.tetris_ns(line8, line8) == 0.0
        assert model.serial_ns(line8, line8) == 0.0

    def test_budget_respected(self, rng):
        old = rng.integers(0, 1 << 63, size=8, dtype=np.uint64)
        new = rng.integers(0, 1 << 63, size=8, dtype=np.uint64)
        sched = MLCModel(power_budget=64.0).schedule_line(old, new)
        assert sched.occupancy().max() <= 64.0 + 1e-9
