"""Unit tests for every write scheme against the paper's equations."""

import numpy as np
import pytest

from repro.config import default_config
from repro.pcm.state import LineState
from repro.schemes import (
    ALL_SCHEMES,
    COMPARED_SCHEMES,
    SCHEME_REGISTRY,
    get_scheme,
)

T_READ, T_RESET, T_SET = 50.0, 53.0, 430.0


@pytest.fixture
def old_new(rng):
    old = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
    new = old.copy()
    new[0] ^= np.uint64(0b111)          # 3 changed cells in unit 0
    new[5] ^= np.uint64(0xFF << 10)     # 8 changed cells in unit 5
    return old, new


class TestRegistry:
    def test_all_names_registered(self):
        for name in ALL_SCHEMES:
            assert name in SCHEME_REGISTRY

    def test_get_scheme_unknown_raises(self):
        with pytest.raises(KeyError):
            get_scheme("nope")

    def test_compared_schemes_subset(self):
        assert set(COMPARED_SCHEMES) <= set(ALL_SCHEMES)

    def test_default_config_attached(self):
        s = get_scheme("dcw")
        assert s.config.K == 8

    def test_duplicate_name_registration_raises(self):
        # Regression: a second class claiming an existing name used to
        # silently shadow the original in SCHEME_REGISTRY, mis-pricing
        # every sweep and cache key using it.
        from repro.schemes.base import WriteScheme

        with pytest.raises(ValueError, match="already registered"):
            class ShadowDCW(WriteScheme):
                name = "dcw"
                requires_read = True

                def worst_case_units(self):
                    return 8.0

                def _write_once(self, state, new_logical):
                    raise NotImplementedError

        assert SCHEME_REGISTRY["dcw"].__name__ == "DCWWrite"

    def test_subclass_without_own_name_does_not_reregister(self):
        # A refinement subclass inheriting ``name`` is not a new scheme
        # and must neither raise nor clobber its parent's slot.
        original = SCHEME_REGISTRY["dcw"]

        class TunedDCW(original):
            pass

        assert SCHEME_REGISTRY["dcw"] is original


class TestServiceTimeEquations:
    """Equations 1-4 at the Table II operating point (N/M = 8, K=8, L=2)."""

    def test_conventional_equation1(self, old_new):
        old, new = old_new
        out = get_scheme("conventional").write(LineState.from_logical(old), new)
        assert out.service_ns == pytest.approx(8 * T_SET)

    def test_dcw_adds_read(self, old_new):
        old, new = old_new
        out = get_scheme("dcw").write(LineState.from_logical(old), new)
        assert out.service_ns == pytest.approx(T_READ + 8 * T_SET)

    def test_flip_n_write_equation2(self, old_new):
        old, new = old_new
        out = get_scheme("flip_n_write").write(LineState.from_logical(old), new)
        assert out.service_ns == pytest.approx(T_READ + 4 * T_SET)

    def test_two_stage_equation3(self, old_new):
        old, new = old_new
        out = get_scheme("two_stage").write(LineState.from_logical(old), new)
        # (1/K + 1/2L) * 8 * Tset = 3 * Tset, no read.
        assert out.service_ns == pytest.approx(3 * T_SET)

    def test_three_stage_equation4(self, old_new):
        old, new = old_new
        out = get_scheme("three_stage").write(LineState.from_logical(old), new)
        assert out.service_ns == pytest.approx(T_READ + 2.5 * T_SET)

    def test_tetris_equation5(self, old_new):
        old, new = old_new
        scheme = get_scheme("tetris")
        out = scheme.write(LineState.from_logical(old), new)
        sched = scheme.last_schedule
        expected = T_READ + 102.5 + sched.service_time_ns(T_SET)
        assert out.service_ns == pytest.approx(expected)

    def test_scheme_ordering_on_typical_write(self, old_new):
        """On a typical few-bits write the paper's ranking must hold:
        tetris < 3SW < 2SW < FNW < DCW."""
        old, new = old_new
        times = {}
        for name in ALL_SCHEMES:
            times[name] = get_scheme(name).write(
                LineState.from_logical(old.copy()), new
            ).service_ns
        assert times["tetris"] < times["three_stage"]
        assert times["three_stage"] < times["two_stage"]
        assert times["two_stage"] < times["flip_n_write"]
        assert times["flip_n_write"] < times["dcw"]


class TestStateCommit:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_logical_view_after_write(self, name, old_new):
        old, new = old_new
        state = LineState.from_logical(old.copy())
        get_scheme(name).write(state, new)
        assert np.array_equal(state.logical, new)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_write_twice_roundtrip(self, name, old_new, rng):
        old, new = old_new
        state = LineState.from_logical(old.copy())
        scheme = get_scheme(name)
        scheme.write(state, new)
        newer = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
        scheme.write(state, newer)
        assert np.array_equal(state.logical, newer)

    def test_flip_scheme_inverts_heavy_units(self):
        state = LineState.from_logical(np.zeros(4, dtype=np.uint64))
        heavy = np.full(4, (1 << 40) - 1, dtype=np.uint64)  # 40 changed bits
        out = get_scheme("flip_n_write").write(state, heavy)
        assert out.flipped_units == 4
        assert state.flip.all()
        assert np.array_equal(state.logical, heavy)


class TestProgrammedCells:
    def test_dcw_counts_changed_cells_only(self, old_new):
        old, new = old_new
        out = get_scheme("dcw").write(LineState.from_logical(old.copy()), new)
        assert out.n_set + out.n_reset == 11  # 3 + 8 changed bits

    def test_conventional_programs_every_cell(self, old_new):
        old, new = old_new
        out = get_scheme("conventional").write(LineState.from_logical(old.copy()), new)
        total_ones = int(np.bitwise_count(new).sum())
        assert out.n_set == total_ones
        assert out.n_reset == 512 - total_ones

    def test_two_stage_programs_every_cell_post_flip(self, old_new):
        old, new = old_new
        out = get_scheme("two_stage").write(LineState.from_logical(old.copy()), new)
        assert out.n_set + out.n_reset == 512

    def test_two_stage_flip_bounds_sets(self, rng):
        # Unit with 60 ones: flip bounds the SET phase at <= 32 per unit.
        heavy = np.array([(1 << 60) - 1], dtype=np.uint64)
        state = LineState.from_logical(np.zeros(1, dtype=np.uint64))
        out = get_scheme("two_stage").write(state, heavy)
        assert out.n_set <= 32
        assert out.flipped_units == 1

    def test_flip_family_agree_on_counts(self, old_new):
        """FNW / 3SW / Tetris share the read stage, so identical inputs
        give identical programmed-cell counts."""
        old, new = old_new
        outs = [
            get_scheme(n).write(LineState.from_logical(old.copy()), new)
            for n in ("flip_n_write", "three_stage", "tetris")
        ]
        assert len({(o.n_set, o.n_reset) for o in outs}) == 1


class TestEnergyAccounting:
    def test_comparison_schemes_cheaper_than_full_writes(self, old_new):
        old, new = old_new
        e = {
            n: get_scheme(n).write(LineState.from_logical(old.copy()), new).energy
            for n in ALL_SCHEMES
        }
        # Table I: 2-Stage-Write does NOT reduce energy; the others do.
        assert e["dcw"] < e["conventional"]
        assert e["flip_n_write"] < e["two_stage"]
        assert e["three_stage"] < e["two_stage"]
        assert e["tetris"] < e["two_stage"]

    def test_unchanged_write_costs_only_the_read(self, line8):
        state = LineState.from_logical(line8.copy())
        out = get_scheme("dcw").write(state, line8)
        assert out.n_set == 0 and out.n_reset == 0
        assert out.energy == pytest.approx(
            get_scheme("dcw").energy_model.read_energy_per_line
        )


class TestWorstCaseBounds:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_service_never_exceeds_worst_case(self, name, rng):
        scheme = get_scheme(name)
        bound = scheme.worst_case_service_ns()
        for _ in range(20):
            old = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
            new = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
            out = scheme.write(LineState.from_logical(old), new)
            assert out.service_ns <= bound + scheme.config.analysis_overhead_ns + 1e-6


class TestTetrisGranularity:
    def test_chip_mode_runs_and_bounds_bank_mode(self, old_new):
        old, new = old_new
        cfg = default_config()
        bank = get_scheme("tetris", cfg)
        chip = get_scheme("tetris", cfg, granularity="chip")
        out_bank = bank.write(LineState.from_logical(old.copy()), new)
        out_chip = chip.write(LineState.from_logical(old.copy()), new)
        # Without GCP pooling the slowest chip gates the bank: never faster.
        assert out_chip.units >= out_bank.units - 1e-9
        assert chip.last_chip_schedules is not None
        assert len(chip.last_chip_schedules) == 4

    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError):
            get_scheme("tetris", granularity="rank")
