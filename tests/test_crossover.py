"""Tests for the intensity-scaling and crossover analysis."""

import numpy as np
import pytest

from repro.experiments.crossover import (
    CrossoverPoint,
    find_knee,
    scale_intensity,
    sweep_intensity,
)
from repro.trace.synthetic import generate_trace


class TestScaleIntensity:
    def test_gaps_shrink(self):
        trace = generate_trace("dedup", 100, seed=1)
        fast = scale_intensity(trace, 2.0)
        assert fast.records["gap"].sum() < trace.records["gap"].sum()
        assert (fast.records["gap"] >= 1).all()

    def test_requests_unchanged(self):
        trace = generate_trace("dedup", 100, seed=1)
        fast = scale_intensity(trace, 4.0)
        assert len(fast) == len(trace)
        assert np.array_equal(fast.write_counts, trace.write_counts)
        assert np.array_equal(fast.records["line"], trace.records["line"])

    def test_rpki_scales(self):
        trace = generate_trace("canneal", 500, seed=1)
        fast = scale_intensity(trace, 2.0)
        r0, _ = trace.measured_rpki_wpki()
        r1, _ = fast.measured_rpki_wpki()
        assert r1 == pytest.approx(2 * r0, rel=0.05)

    def test_slowdown_factor(self):
        trace = generate_trace("vips", 100, seed=1)
        slow = scale_intensity(trace, 0.5)
        assert slow.records["gap"].sum() > 1.9 * trace.records["gap"].sum()

    def test_rejects_bad_factor(self):
        trace = generate_trace("dedup", 10, seed=1)
        with pytest.raises(ValueError):
            scale_intensity(trace, 0.0)

    def test_metadata_recorded(self):
        trace = generate_trace("dedup", 10, seed=1)
        fast = scale_intensity(trace, 3.0)
        assert fast.meta["intensity"] == 3.0
        assert "@x3" in fast.workload


class TestSweep:
    def test_sweep_shape(self):
        points = sweep_intensity(
            "swaptions", factors=(0.5, 2.0), schemes=("tetris",),
            requests_per_core=150,
        )
        assert len(points) == 2
        assert all("tetris" in p.runtime_ratio for p in points)

    def test_find_knee(self):
        points = [
            CrossoverPoint(0.1, {"tetris": 0.99}, {}),
            CrossoverPoint(1.0, {"tetris": 0.80}, {}),
            CrossoverPoint(2.0, {"tetris": 0.50}, {}),
        ]
        assert find_knee(points) == 1.0

    def test_find_knee_none(self):
        points = [CrossoverPoint(1.0, {"tetris": 0.99}, {})]
        assert find_knee(points) is None
