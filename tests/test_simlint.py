"""simlint: rule behavior on fixtures, CLI contract, and a clean tree.

The clean-tree test is the tier-1 guardrail the linter exists for: the
whole repository must lint clean, so any PR that introduces an unseeded
RNG, a wall-clock read in the simulator, or an unregistered scheme
fails here before it can corrupt experiment results.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "simlint"

if str(REPO) not in sys.path:  # the root shim makes `import simlint` work
    sys.path.insert(0, str(REPO))

import simlint  # noqa: E402
from simlint import DEFAULT_EXCLUDES, lint_paths, lint_source  # noqa: E402


def lint_fixture(name: str, module: str) -> list:
    """Lint a fixture file's text under an explicit module scope."""
    path = FIXTURES / name
    return lint_source(path.read_text(), path=str(path), module=module)


def rules_fired(findings) -> set[str]:
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Every rule fires on its bad fixture and stays quiet on its good one.
# ----------------------------------------------------------------------
FIXTURE_MATRIX = [
    # (rule, module scope to lint under, expected finding count in bad)
    ("SL001", "repro.trace.fixture", 5),
    ("SL002", "repro.core.fixture", 4),
    ("SL003", "repro.schemes.fixture", 5),
    ("SL004", "tests.fixture", 4),
    ("SL005", "tests.fixture", 4),
    ("SL006", "repro.core.fixture", 3),
    ("SL007", "repro.pcm.fixture", 3),
    ("SL008", "repro.experiments.fixture", 3),
    ("SL009", "repro.parallel.fixture", 5),
    ("SL010", "repro.oracle.analytic", 5),
    ("SL011", "repro.core.fixture", 8),
    ("SL014", "repro.experiments.fixture", 5),
    ("SL015", "repro.service.fixture", 6),
    ("SL016", "repro.fastpath.pricer", 5),
]

# Project-level rules lint a directory mini-project (with its own
# simlint.toml) instead of a single file.
DIR_FIXTURE_MATRIX = [
    # (rule, expected findings on bad tree, of which warn-severity)
    ("SL012", 4, 1),
    ("SL013", 3, 0),
]


@pytest.mark.parametrize("rule,expected,warns", DIR_FIXTURE_MATRIX)
def test_project_rule_fires_on_bad_tree(rule, expected, warns):
    findings = lint_paths([FIXTURES / f"{rule.lower()}_bad"], excludes=())
    hits = [f for f in findings if f.rule == rule]
    assert len(hits) == expected, [f.format() for f in findings]
    assert sum(f.severity == "warn" for f in hits) == warns
    assert {f.rule for f in findings} == {rule}


@pytest.mark.parametrize("rule,_e,_w", DIR_FIXTURE_MATRIX)
def test_project_rule_quiet_on_good_tree(rule, _e, _w):
    findings = lint_paths([FIXTURES / f"{rule.lower()}_good"], excludes=())
    assert [f.format() for f in findings] == []


@pytest.mark.parametrize("rule,module,expected", FIXTURE_MATRIX)
def test_rule_fires_on_bad_fixture(rule, module, expected):
    findings = lint_fixture(f"{rule.lower()}_bad.py", module)
    hits = [f for f in findings if f.rule == rule]
    assert len(hits) == expected, [f.format() for f in findings]
    assert all(f.line > 0 for f in hits)


@pytest.mark.parametrize("rule,module,_", FIXTURE_MATRIX)
def test_rule_quiet_on_good_fixture(rule, module, _):
    findings = lint_fixture(f"{rule.lower()}_good.py", module)
    assert [f.format() for f in findings] == []


# ----------------------------------------------------------------------
# Scoping: path decides which rules even run.
# ----------------------------------------------------------------------
def test_sl001_does_not_apply_outside_repro():
    src = (FIXTURES / "sl001_bad.py").read_text()
    findings = lint_source(src, path="tests/helpers.py", module="tests.helpers")
    assert "SL001" not in rules_fired(findings)


def test_sl002_applies_only_to_simulated_time_packages():
    src = (FIXTURES / "sl002_bad.py").read_text()
    for module, applies in [
        ("repro.sim.engine", True),
        ("repro.pcm.chip", True),
        ("repro.experiments.runner", False),
        ("benchmarks.bench_overhead", False),
    ]:
        fired = rules_fired(lint_source(src, module=module))
        assert ("SL002" in fired) is applies, module


def test_sl016_reverse_direction_and_exemptions():
    consume = "from repro.fastpath import price_cell\n"
    # Simulator packages must not derive timing from the analytic lane...
    assert "SL016" in rules_fired(lint_source(consume, module="repro.schemes.x"))
    assert "SL016" in rules_fired(lint_source(consume, module="repro.pcm.bank"))
    assert "SL016" in rules_fired(lint_source(consume, module="repro.sim.engine"))
    # ...but the sweep engine and the CLI are sanctioned consumers.
    fired = rules_fired(lint_source(consume, module="repro.parallel.engine"))
    assert "SL016" not in fired
    assert "SL016" not in rules_fired(lint_source(consume, module="repro.cli"))
    # The recheck module is the one fastpath module allowed to cross.
    cross = "from repro.sim import engine\n"
    assert "SL016" not in rules_fired(
        lint_source(cross, module="repro.fastpath.recheck")
    )
    assert "SL016" in rules_fired(
        lint_source(cross, module="repro.fastpath.envelope")
    )


def test_sl006_scoped_to_core_and_schemes():
    src = (FIXTURES / "sl006_bad.py").read_text()
    assert "SL006" in rules_fired(lint_source(src, module="repro.schemes.x"))
    assert "SL006" not in rules_fired(lint_source(src, module="repro.trace.x"))


def test_sl007_scoped_to_repro():
    src = (FIXTURES / "sl007_bad.py").read_text()
    assert "SL007" in rules_fired(lint_source(src, module="repro.faults.x"))
    assert "SL007" not in rules_fired(lint_source(src, module="tests.helpers"))


def test_sl008_exempts_the_cli_and_non_library_code():
    src = (FIXTURES / "sl008_bad.py").read_text()
    assert "SL008" in rules_fired(lint_source(src, module="repro.memctrl.x"))
    assert "SL008" not in rules_fired(lint_source(src, module="repro.cli"))
    assert "SL008" not in rules_fired(lint_source(src, module="benchmarks.bench_x"))


def test_sl009_scoped_to_repro():
    src = (FIXTURES / "sl009_bad.py").read_text()
    assert "SL009" in rules_fired(lint_source(src, module="repro.parallel.x"))
    assert "SL009" not in rules_fired(lint_source(src, module="benchmarks.bench_x"))


def test_sl010_flags_both_import_directions():
    src = (FIXTURES / "sl010_bad.py").read_text()
    # As the analytic oracle: the five simulator imports are violations.
    oracle_hits = [
        f for f in lint_source(src, module="repro.oracle.analytic")
        if f.rule == "SL010"
    ]
    assert len(oracle_hits) == 5
    # As production scheme code: the two oracle imports are violations.
    scheme_hits = [
        f for f in lint_source(src, module="repro.schemes.fixture")
        if f.rule == "SL010"
    ]
    assert len(scheme_hits) == 2
    # The differential harness is the sanctioned bridge: under its module
    # scope the simulator imports are fine (it must drive production
    # code) and so are the oracle-internal ones.
    assert "SL010" not in rules_fired(
        lint_source(src, module="repro.oracle.differential")
    )
    # The CLI may report oracle results.
    assert "SL010" not in rules_fired(lint_source(src, module="repro.cli"))


def test_sl014_exempts_cli_and_the_supervisor_module():
    src = (FIXTURES / "sl014_bad.py").read_text()
    assert "SL014" in rules_fired(lint_source(src, module="repro.parallel.engine"))
    assert "SL014" not in rules_fired(lint_source(src, module="repro.cli"))
    assert "SL014" not in rules_fired(
        lint_source(src, module="repro.parallel.supervisor")
    )
    assert "SL014" not in rules_fired(lint_source(src, module="tests.helpers"))
    assert "SL014" not in rules_fired(lint_source(src, module="benchmarks.bench_x"))


def test_sl015_scoped_to_the_service_package():
    src = (FIXTURES / "sl015_bad.py").read_text()
    assert "SL015" in rules_fired(lint_source(src, module="repro.service.server"))
    # Blocking calls in sync code elsewhere are other rules' business.
    assert "SL015" not in rules_fired(lint_source(src, module="repro.parallel.engine"))
    assert "SL015" not in rules_fired(lint_source(src, module="repro.cli"))
    assert "SL015" not in rules_fired(lint_source(src, module="tests.helpers"))


def test_sl015_ignores_nested_defs_and_sync_functions():
    src = (
        "import time\n"
        "def sync_helper():\n"
        "    time.sleep(1)\n"  # sync function: out of scope
        "async def dispatch():\n"
        "    def backoff():\n"
        "        time.sleep(1)\n"  # nested def: runs off-loop
        "    return backoff\n"
    )
    assert "SL015" not in rules_fired(lint_source(src, module="repro.service.x"))
    src_bad = "import time\nasync def dispatch():\n    time.sleep(1)\n"
    assert "SL015" in rules_fired(lint_source(src_bad, module="repro.service.x"))


def test_sl009_quiet_without_pool_submissions():
    # Module-level mutable state alone is not a finding — only when a
    # pool worker consumes it.
    src = "STATE = {}\n\ndef not_a_worker(x):\n    STATE[x] = x\n    return x\n"
    assert "SL009" not in rules_fired(lint_source(src, module="repro.parallel.x"))


# ----------------------------------------------------------------------
# Suppression comments.
# ----------------------------------------------------------------------
def test_line_suppression_silences_only_that_rule_and_line():
    src = (
        "def f(xs=[]):  # simlint: disable=SL005\n"
        "    return xs\n"
        "def g(ys=[]):\n"
        "    return ys\n"
    )
    findings = lint_source(src, module="tests.x")
    assert [f.line for f in findings if f.rule == "SL005"] == [3]


def test_file_suppression_silences_whole_module():
    src = (
        "# simlint: disable-file=SL005\n"
        "def f(xs=[]):\n"
        "    return xs\n"
    )
    assert lint_source(src, module="tests.x") == []


def test_directive_inside_string_is_inert():
    src = (
        'NOTE = "# simlint: disable-file=SL005"\n'
        "def f(xs=[]):\n"
        "    return xs\n"
    )
    assert "SL005" in rules_fired(lint_source(src, module="tests.x"))


def test_syntax_error_reported_as_sl000():
    findings = lint_source("def broken(:\n", module="tests.x")
    assert rules_fired(findings) == {"SL000"}


# ----------------------------------------------------------------------
# The tree itself must be clean (tier-1 guardrail).
# ----------------------------------------------------------------------
def test_tree_is_simlint_clean():
    paths = [REPO / "src", REPO / "tests", REPO / "benchmarks"]
    findings = lint_paths(paths)
    assert [f.format() for f in findings] == []


def test_examples_and_tools_are_simlint_clean():
    findings = lint_paths([REPO / "examples", REPO / "tools"])
    assert [f.format() for f in findings] == []


def test_default_excludes_skip_the_bad_fixtures():
    findings = lint_paths([FIXTURES])
    assert findings == []
    assert "fixtures/simlint" in DEFAULT_EXCLUDES


# ----------------------------------------------------------------------
# CLI contract: python -m simlint from the repo root, text and JSON.
# ----------------------------------------------------------------------
def run_cli(*args, cwd=REPO):
    return subprocess.run(
        [sys.executable, "-m", "simlint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_cli_clean_run_exits_zero():
    proc = run_cli("src/repro/util", "src/repro/verify")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert proc.stdout.strip() == ""


def test_cli_json_reports_findings_and_exits_one(tmp_path):
    bad = tmp_path / "bad_module.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    proc = run_cli(str(bad), "--json")
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["count"] == 1
    (finding,) = doc["findings"]
    assert finding["rule"] == "SL005"
    assert finding["line"] == 1
    assert finding["path"] == str(bad)


def test_cli_select_restricts_rules(tmp_path):
    bad = tmp_path / "bad_module.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    proc = run_cli(str(bad), "--select", "SL004", "--json")
    assert proc.returncode == 0
    assert json.loads(proc.stdout)["count"] == 0


def test_cli_rejects_unknown_rule_and_missing_path(tmp_path):
    assert run_cli("--select", "SL999", str(tmp_path)).returncode == 2
    assert run_cli(str(tmp_path / "nope")).returncode == 2


def test_cli_list_rules_names_all_sixteen():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    listed = {line.split()[0] for line in proc.stdout.splitlines() if line}
    assert listed == {
        "SL001", "SL002", "SL003", "SL004", "SL005", "SL006", "SL007",
        "SL008", "SL009", "SL010", "SL011", "SL012", "SL013", "SL014",
        "SL015", "SL016",
    }


def test_cli_explain_renders_catalogue_entry():
    proc = run_cli("--explain", "SL011")
    assert proc.returncode == 0
    assert "SL011" in proc.stdout
    assert "mixed physical units" in proc.stdout
    assert "X_PER_Y" in proc.stdout  # the docstring's escape hatch
    assert run_cli("--explain", "SL999").returncode == 2


def test_cli_json_reports_suppressed_counts(tmp_path):
    bad = tmp_path / "bad_module.py"
    bad.write_text(
        "def f(xs=[]):  # simlint: disable=SL005\n"
        "    return xs\n"
        "def g(ys=[]):\n"
        "    return ys\n"
    )
    proc = run_cli(str(bad), "--json")
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["count"] == 1
    assert doc["suppressed"] == {"SL005": 1}
    assert doc["errors"] == 1
    assert doc["warnings"] == 0


def test_cli_warn_severity_does_not_fail_the_run(tmp_path):
    # An orphan module is the one built-in warn-severity finding.
    proj = tmp_path / "proj"
    (proj / "app").mkdir(parents=True)
    (proj / "simlint.toml").write_text(
        '[project]\nroot = "app"\n\n[layers]\norder = [["app"]]\n'
    )
    (proj / "app" / "__init__.py").write_text('"""pkg."""\n')
    (proj / "app" / "lonely.py").write_text('"""orphan."""\nX = 1\n')
    proc = run_cli(str(proj), "--json", "--no-cache")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["warnings"] == 1 and doc["errors"] == 0
    (finding,) = doc["findings"]
    assert finding["rule"] == "SL012" and finding["severity"] == "warn"


# ----------------------------------------------------------------------
# Registry coherence: SL003's premise matches the live registry.
# ----------------------------------------------------------------------
def test_live_scheme_registry_matches_sl003_expectations():
    import repro.schemes  # noqa: F401 — triggers registration imports
    from repro.schemes.base import SCHEME_REGISTRY

    assert {"tetris", "conventional", "dcw", "flip_n_write"} <= set(SCHEME_REGISTRY)
    for name, cls in SCHEME_REGISTRY.items():
        assert isinstance(name, str) and name
        assert callable(getattr(cls, "write"))
        assert callable(getattr(cls, "worst_case_units"))
